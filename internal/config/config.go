// Package config implements the PISCES 2 configuration environment's data
// model (paper, Section 9 and Section 11): the programmer-controlled mapping
// of the virtual machine onto the hardware.  In creating a configuration the
// programmer chooses
//
//  1. how many clusters to use and their numbers,
//  2. the "primary" FLEX PE for each cluster (all user tasks of the cluster
//     run on this PE),
//  3. the "secondary" FLEX PEs that run force members for the cluster, and
//  4. the number of slots in each cluster available to run user tasks,
//
// together with an execution time limit and trace settings.  Configurations
// may be saved on files and reused or edited for later runs.
package config

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/flex"
	"repro/internal/trace"
)

// Limits imposed by the FLEX/32 implementation (Section 5: "The programmer
// can choose to use between 1 and 18 clusters for a particular run").
const (
	MinClusters = 1
	MaxClusters = 18
)

// Cluster is the mapping of one virtual-machine cluster onto hardware.
type Cluster struct {
	// Number is the cluster number used by the program (CLUSTER <number>).
	Number int
	// PrimaryPE is the processor that runs all of the cluster's user tasks
	// (and its task controller).
	PrimaryPE int
	// SecondaryPEs run force members for tasks of this cluster.  An empty
	// list means a FORCESPLIT in this cluster causes no parallel splitting.
	SecondaryPEs []int
	// Slots is the number of slots available to run user tasks in the
	// cluster; it bounds the degree of multiprogramming on the primary PE.
	Slots int
}

// ForceSize returns the number of members a force split in this cluster
// produces: the original task plus one new member per secondary PE.
func (c Cluster) ForceSize() int { return 1 + len(c.SecondaryPEs) }

// Configuration is one complete virtual-machine-to-hardware mapping plus the
// run controls kept with it (execution time limit, trace settings).
type Configuration struct {
	// Name identifies the configuration when saved to a file.
	Name string
	// Clusters lists the clusters in use, with distinct Number fields.
	Clusters []Cluster
	// TimeLimit is the execution time limit for the run (0 = none).
	TimeLimit time.Duration
	// TraceEvents enables tracing for the named event kinds (values of
	// trace.Kind.String).
	TraceEvents []string
}

// Cluster returns the cluster numbered n, or nil.
func (c *Configuration) Cluster(n int) *Cluster {
	for i := range c.Clusters {
		if c.Clusters[i].Number == n {
			return &c.Clusters[i]
		}
	}
	return nil
}

// ClusterNumbers returns the configured cluster numbers in ascending order.
func (c *Configuration) ClusterNumbers() []int {
	out := make([]int, 0, len(c.Clusters))
	for _, cl := range c.Clusters {
		out = append(out, cl.Number)
	}
	sort.Ints(out)
	return out
}

// TotalSlots returns the total number of user-task slots across clusters.
func (c *Configuration) TotalSlots() int {
	n := 0
	for _, cl := range c.Clusters {
		n += cl.Slots
	}
	return n
}

// Validate checks the configuration against a machine description.  It
// enforces the FLEX/32 rules of Sections 5, 9, and 11: cluster numbers unique
// and within 1..18, primary PEs are MMOS PEs (not the Unix front-end PEs),
// secondary PEs are MMOS PEs and distinct within a cluster, no two clusters
// share a primary PE, slot counts positive, and trace event names known.
func (c *Configuration) Validate(machine flex.Config) error {
	if len(c.Clusters) < MinClusters {
		return fmt.Errorf("config: at least %d cluster required", MinClusters)
	}
	if len(c.Clusters) > MaxClusters {
		return fmt.Errorf("config: at most %d clusters may be used, got %d", MaxClusters, len(c.Clusters))
	}
	isMMOS := func(pe int) bool { return pe > machine.UnixPEs && pe <= machine.NumPE }

	seenNumber := make(map[int]bool)
	seenPrimary := make(map[int]int)
	for _, cl := range c.Clusters {
		if cl.Number < 1 || cl.Number > MaxClusters {
			return fmt.Errorf("config: cluster number %d out of range 1..%d", cl.Number, MaxClusters)
		}
		if seenNumber[cl.Number] {
			return fmt.Errorf("config: duplicate cluster number %d", cl.Number)
		}
		seenNumber[cl.Number] = true
		if !isMMOS(cl.PrimaryPE) {
			return fmt.Errorf("config: cluster %d primary PE %d is not an MMOS PE (%d..%d)",
				cl.Number, cl.PrimaryPE, machine.UnixPEs+1, machine.NumPE)
		}
		if prev, dup := seenPrimary[cl.PrimaryPE]; dup {
			return fmt.Errorf("config: PE %d is the primary PE of both cluster %d and cluster %d",
				cl.PrimaryPE, prev, cl.Number)
		}
		seenPrimary[cl.PrimaryPE] = cl.Number
		if cl.Slots < 1 {
			return fmt.Errorf("config: cluster %d must have at least one slot", cl.Number)
		}
		seenSecondary := make(map[int]bool)
		for _, pe := range cl.SecondaryPEs {
			if !isMMOS(pe) {
				return fmt.Errorf("config: cluster %d secondary PE %d is not an MMOS PE", cl.Number, pe)
			}
			if seenSecondary[pe] {
				return fmt.Errorf("config: cluster %d lists secondary PE %d twice", cl.Number, pe)
			}
			seenSecondary[pe] = true
		}
	}
	for _, ev := range c.TraceEvents {
		if _, err := trace.ParseKind(ev); err != nil {
			return fmt.Errorf("config: unknown trace event %q", ev)
		}
	}
	if c.TimeLimit < 0 {
		return fmt.Errorf("config: negative time limit %v", c.TimeLimit)
	}
	return nil
}

// MaxMultiprogramming returns, for PE pe, the maximum number of simultaneous
// user tasks and force members that may be time-sharing that PE under this
// configuration — the quantity worked out in the Section 9 example ("The
// maximum number of simultaneous tasks that might be running on one of these
// PE's is equal to the sum of the slots allocated in both clusters, 4+4=8").
// The count covers user-task slots on the PE's own cluster (if it is a
// primary PE) plus the slots of every cluster for which it is a secondary PE.
func (c *Configuration) MaxMultiprogramming(pe int) int {
	n := 0
	for _, cl := range c.Clusters {
		if cl.PrimaryPE == pe {
			n += cl.Slots
		}
		for _, s := range cl.SecondaryPEs {
			if s == pe {
				n += cl.Slots
			}
		}
	}
	return n
}

// UsedPEs returns the sorted list of PEs referenced by the configuration.
func (c *Configuration) UsedPEs() []int {
	set := make(map[int]bool)
	for _, cl := range c.Clusters {
		set[cl.PrimaryPE] = true
		for _, s := range cl.SecondaryPEs {
			set[s] = true
		}
	}
	out := make([]int, 0, len(set))
	for pe := range set {
		out = append(out, pe)
	}
	sort.Ints(out)
	return out
}

// Simple builds an n-cluster configuration on the default machine: clusters
// 1..n mapped to PEs 3..(3+n-1) with slots user-task slots each and no
// secondary PEs.  It is the starting point offered by the configuration
// environment's menus.
func Simple(n, slots int) *Configuration {
	cfg := &Configuration{Name: fmt.Sprintf("simple-%d", n)}
	for i := 1; i <= n; i++ {
		cfg.Clusters = append(cfg.Clusters, Cluster{
			Number:    i,
			PrimaryPE: flex.FirstMMOSPE + i - 1,
			Slots:     slots,
		})
	}
	return cfg
}

// WithForces returns a copy of the configuration in which cluster number n is
// given the listed secondary PEs.
func (c *Configuration) WithForces(n int, secondaries ...int) *Configuration {
	out := c.Clone()
	if cl := out.Cluster(n); cl != nil {
		cl.SecondaryPEs = append([]int(nil), secondaries...)
	}
	return out
}

// Clone returns a deep copy.
func (c *Configuration) Clone() *Configuration {
	out := &Configuration{Name: c.Name, TimeLimit: c.TimeLimit}
	out.TraceEvents = append([]string(nil), c.TraceEvents...)
	for _, cl := range c.Clusters {
		cl.SecondaryPEs = append([]int(nil), cl.SecondaryPEs...)
		out.Clusters = append(out.Clusters, cl)
	}
	return out
}

// Section9Example returns the worked example of Section 9 of the paper:
//
//	a. the program runs on four clusters, numbered 1-4;
//	b. clusters 1-4 map to FLEX PEs 3-6 with 4 slots each;
//	c. PEs 7-15 run forces for both clusters 3 and 4;
//	d. PEs 16-20 run forces for cluster 2;
//	e. cluster 1 has no secondary PEs.
func Section9Example() *Configuration {
	forces34 := []int{7, 8, 9, 10, 11, 12, 13, 14, 15}
	forces2 := []int{16, 17, 18, 19, 20}
	return &Configuration{
		Name: "section-9-example",
		Clusters: []Cluster{
			{Number: 1, PrimaryPE: 3, Slots: 4},
			{Number: 2, PrimaryPE: 4, Slots: 4, SecondaryPEs: forces2},
			{Number: 3, PrimaryPE: 5, Slots: 4, SecondaryPEs: append([]int(nil), forces34...)},
			{Number: 4, PrimaryPE: 6, Slots: 4, SecondaryPEs: append([]int(nil), forces34...)},
		},
	}
}

// String renders the configuration as the summary shown by the configuration
// environment before a run.
func (c *Configuration) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "configuration %q: %d cluster(s)\n", c.Name, len(c.Clusters))
	nums := c.ClusterNumbers()
	for _, n := range nums {
		cl := c.Cluster(n)
		fmt.Fprintf(&b, "  cluster %-2d  primary PE %-2d  slots %-2d  force size %-2d  secondaries %v\n",
			cl.Number, cl.PrimaryPE, cl.Slots, cl.ForceSize(), cl.SecondaryPEs)
	}
	if c.TimeLimit > 0 {
		fmt.Fprintf(&b, "  time limit %v\n", c.TimeLimit)
	}
	if len(c.TraceEvents) > 0 {
		fmt.Fprintf(&b, "  trace: %s\n", strings.Join(c.TraceEvents, ", "))
	}
	return b.String()
}

// Save writes the configuration in the textual file format used by the
// configuration environment ("Configurations may be saved on files and reused
// or edited as desired for later runs", Section 9).
func (c *Configuration) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "pisces-configuration %s\n", strconv.Quote(c.Name))
	for _, n := range c.ClusterNumbers() {
		cl := c.Cluster(n)
		fmt.Fprintf(bw, "cluster %d primary %d slots %d", cl.Number, cl.PrimaryPE, cl.Slots)
		if len(cl.SecondaryPEs) > 0 {
			fmt.Fprintf(bw, " secondaries %s", joinInts(cl.SecondaryPEs, ","))
		}
		fmt.Fprintln(bw)
	}
	if c.TimeLimit > 0 {
		fmt.Fprintf(bw, "timelimit %s\n", c.TimeLimit)
	}
	for _, ev := range c.TraceEvents {
		fmt.Fprintf(bw, "trace %s\n", ev)
	}
	return bw.Flush()
}

// Load reads a configuration previously written by Save.
func Load(r io.Reader) (*Configuration, error) {
	sc := bufio.NewScanner(r)
	cfg := &Configuration{}
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "pisces-configuration":
			sawHeader = true
			if len(fields) >= 2 {
				name, err := strconv.Unquote(strings.TrimPrefix(line, "pisces-configuration "))
				if err != nil {
					name = strings.Join(fields[1:], " ")
				}
				cfg.Name = name
			}
		case "cluster":
			cl, err := parseClusterLine(fields)
			if err != nil {
				return nil, fmt.Errorf("config: line %d: %w", lineNo, err)
			}
			cfg.Clusters = append(cfg.Clusters, cl)
		case "timelimit":
			if len(fields) != 2 {
				return nil, fmt.Errorf("config: line %d: timelimit needs one value", lineNo)
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil {
				return nil, fmt.Errorf("config: line %d: %w", lineNo, err)
			}
			cfg.TimeLimit = d
		case "trace":
			if len(fields) != 2 {
				return nil, fmt.Errorf("config: line %d: trace needs one event name", lineNo)
			}
			cfg.TraceEvents = append(cfg.TraceEvents, fields[1])
		default:
			return nil, fmt.Errorf("config: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("config: missing pisces-configuration header")
	}
	return cfg, nil
}

func parseClusterLine(fields []string) (Cluster, error) {
	// cluster <n> primary <pe> slots <k> [secondaries a,b,c]
	var cl Cluster
	if len(fields) < 6 {
		return cl, fmt.Errorf("cluster line too short")
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil {
		return cl, fmt.Errorf("bad cluster number %q", fields[1])
	}
	cl.Number = n
	i := 2
	for i < len(fields) {
		switch fields[i] {
		case "primary":
			if i+1 >= len(fields) {
				return cl, fmt.Errorf("primary needs a value")
			}
			v, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return cl, fmt.Errorf("bad primary PE %q", fields[i+1])
			}
			cl.PrimaryPE = v
			i += 2
		case "slots":
			if i+1 >= len(fields) {
				return cl, fmt.Errorf("slots needs a value")
			}
			v, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return cl, fmt.Errorf("bad slot count %q", fields[i+1])
			}
			cl.Slots = v
			i += 2
		case "secondaries":
			if i+1 >= len(fields) {
				return cl, fmt.Errorf("secondaries needs a value")
			}
			pes, err := splitInts(fields[i+1], ",")
			if err != nil {
				return cl, fmt.Errorf("bad secondaries list %q: %w", fields[i+1], err)
			}
			cl.SecondaryPEs = pes
			i += 2
		default:
			return cl, fmt.Errorf("unknown cluster attribute %q", fields[i])
		}
	}
	return cl, nil
}

func joinInts(vals []int, sep string) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, sep)
}

func splitInts(s, sep string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, sep)
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
