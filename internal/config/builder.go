package config

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/flex"
	"repro/internal/trace"
)

// Builder is the interactive part of the configuration environment:
// "Configurations are created within the PISCES 2 environment via a series of
// menus" (paper, Section 9).  The menus ask, for each run,
//
//  1. how many clusters to use and their numbers,
//  2. the primary FLEX PE for each cluster,
//  3. the secondary FLEX PEs to run force members for each cluster,
//  4. the number of slots in each cluster,
//
// plus the execution time limit and trace settings kept with the
// configuration.  Answers are read line-by-line from an io.Reader, so the
// same code drives an interactive terminal session (cmd/pisces) and scripted
// or tested sessions.  Empty answers take the offered default.
type Builder struct {
	machine flex.Config
	in      *bufio.Scanner
	out     io.Writer
}

// NewBuilder creates a builder for the given machine description, reading
// menu answers from in and writing prompts to out.
func NewBuilder(machine flex.Config, in io.Reader, out io.Writer) *Builder {
	return &Builder{machine: machine, in: bufio.NewScanner(in), out: out}
}

// Build runs the menu dialogue and returns the resulting configuration,
// validated against the machine.
func (b *Builder) Build(name string) (*Configuration, error) {
	cfg := &Configuration{Name: name}
	fmt.Fprintf(b.out, "PISCES 2 CONFIGURATION ENVIRONMENT — building configuration %q\n", name)
	fmt.Fprintf(b.out, "MMOS PEs available for user tasks: %d..%d\n", b.machine.UnixPEs+1, b.machine.NumPE)

	nClusters, err := b.askInt(fmt.Sprintf("number of clusters (1..%d)", MaxClusters), 2, 1, MaxClusters)
	if err != nil {
		return nil, err
	}

	usedPrimary := map[int]bool{}
	for i := 1; i <= nClusters; i++ {
		fmt.Fprintf(b.out, "-- cluster %d --\n", i)
		defPE := b.machine.UnixPEs + i
		for usedPrimary[defPE] && defPE < b.machine.NumPE {
			defPE++
		}
		primary, err := b.askInt(fmt.Sprintf("primary PE for cluster %d", i), defPE, b.machine.UnixPEs+1, b.machine.NumPE)
		if err != nil {
			return nil, err
		}
		usedPrimary[primary] = true
		slots, err := b.askInt(fmt.Sprintf("user-task slots in cluster %d", i), 4, 1, 64)
		if err != nil {
			return nil, err
		}
		secondaries, err := b.askPEList(fmt.Sprintf("secondary PEs running force members for cluster %d (comma separated, empty for none)", i))
		if err != nil {
			return nil, err
		}
		cfg.Clusters = append(cfg.Clusters, Cluster{Number: i, PrimaryPE: primary, Slots: slots, SecondaryPEs: secondaries})
	}

	limit, err := b.askDuration("execution time limit (e.g. 90s, empty for none)")
	if err != nil {
		return nil, err
	}
	cfg.TimeLimit = limit

	events, err := b.askTraceEvents()
	if err != nil {
		return nil, err
	}
	cfg.TraceEvents = events

	if err := cfg.Validate(b.machine); err != nil {
		return nil, fmt.Errorf("config: the configuration built from the menu answers is invalid: %w", err)
	}
	fmt.Fprintf(b.out, "configuration complete:\n%s", cfg.String())
	return cfg, nil
}

// answer reads one line; io.EOF ends the dialogue.
func (b *Builder) answer(prompt string) (string, error) {
	fmt.Fprintf(b.out, "%s: ", prompt)
	if !b.in.Scan() {
		if err := b.in.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	return strings.TrimSpace(b.in.Text()), nil
}

func (b *Builder) askInt(prompt string, def, min, max int) (int, error) {
	for {
		ans, err := b.answer(fmt.Sprintf("%s [%d]", prompt, def))
		if err != nil {
			return 0, err
		}
		if ans == "" {
			return def, nil
		}
		v, err := strconv.Atoi(ans)
		if err != nil || v < min || v > max {
			fmt.Fprintf(b.out, "  please answer with a number between %d and %d\n", min, max)
			continue
		}
		return v, nil
	}
}

func (b *Builder) askPEList(prompt string) ([]int, error) {
	for {
		ans, err := b.answer(prompt + " []")
		if err != nil {
			return nil, err
		}
		if ans == "" {
			return nil, nil
		}
		pes, err := splitInts(ans, ",")
		if err != nil {
			fmt.Fprintf(b.out, "  please answer with comma-separated PE numbers\n")
			continue
		}
		ok := true
		for _, pe := range pes {
			if pe <= b.machine.UnixPEs || pe > b.machine.NumPE {
				fmt.Fprintf(b.out, "  PE %d is not an MMOS PE (%d..%d)\n", pe, b.machine.UnixPEs+1, b.machine.NumPE)
				ok = false
			}
		}
		if !ok {
			continue
		}
		return pes, nil
	}
}

func (b *Builder) askDuration(prompt string) (time.Duration, error) {
	for {
		ans, err := b.answer(prompt + " []")
		if err != nil {
			return 0, err
		}
		if ans == "" {
			return 0, nil
		}
		d, err := time.ParseDuration(ans)
		if err != nil || d < 0 {
			fmt.Fprintf(b.out, "  please answer with a duration such as 90s or 5m\n")
			continue
		}
		return d, nil
	}
}

func (b *Builder) askTraceEvents() ([]string, error) {
	names := make([]string, 0, len(trace.Kinds()))
	for _, k := range trace.Kinds() {
		names = append(names, k.String())
	}
	for {
		ans, err := b.answer(fmt.Sprintf("trace events to enable (%s; ALL; empty for none) []", strings.Join(names, ", ")))
		if err != nil {
			return nil, err
		}
		if ans == "" {
			return nil, nil
		}
		if strings.EqualFold(ans, "ALL") {
			return append([]string(nil), names...), nil
		}
		var out []string
		ok := true
		for _, part := range strings.Split(ans, ",") {
			ev := strings.ToUpper(strings.TrimSpace(part))
			if _, err := trace.ParseKind(ev); err != nil {
				fmt.Fprintf(b.out, "  unknown trace event %q\n", ev)
				ok = false
				break
			}
			out = append(out, ev)
		}
		if !ok {
			continue
		}
		return out, nil
	}
}
