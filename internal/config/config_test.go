package config

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/flex"
	"repro/internal/trace"
)

func TestSection9Example(t *testing.T) {
	cfg := Section9Example()
	if err := cfg.Validate(flex.DefaultConfig()); err != nil {
		t.Fatalf("the paper's own example must validate: %v", err)
	}
	if len(cfg.Clusters) != 4 {
		t.Fatalf("clusters = %d, want 4", len(cfg.Clusters))
	}
	// b. clusters 1-4 map to PEs 3-6, 4 slots each.
	for i := 1; i <= 4; i++ {
		cl := cfg.Cluster(i)
		if cl == nil {
			t.Fatalf("cluster %d missing", i)
		}
		if cl.PrimaryPE != 2+i {
			t.Errorf("cluster %d primary PE = %d, want %d", i, cl.PrimaryPE, 2+i)
		}
		if cl.Slots != 4 {
			t.Errorf("cluster %d slots = %d, want 4", i, cl.Slots)
		}
	}
	// c. PEs 7-15 run forces for clusters 3 and 4 -> force size 10.
	if got := cfg.Cluster(3).ForceSize(); got != 10 {
		t.Errorf("cluster 3 force size = %d, want 10", got)
	}
	if got := cfg.Cluster(4).ForceSize(); got != 10 {
		t.Errorf("cluster 4 force size = %d, want 10", got)
	}
	// d. PEs 16-20 run forces for cluster 2 -> force size 6.
	if got := cfg.Cluster(2).ForceSize(); got != 6 {
		t.Errorf("cluster 2 force size = %d, want 6", got)
	}
	// e. cluster 1 has no secondaries -> FORCESPLIT causes no splitting.
	if got := cfg.Cluster(1).ForceSize(); got != 1 {
		t.Errorf("cluster 1 force size = %d, want 1", got)
	}
	// "The maximum number of simultaneous tasks that might be running on one
	// of these PE's is equal to the sum of the slots allocated in both
	// clusters, 4+4=8 here."
	for pe := 7; pe <= 15; pe++ {
		if got := cfg.MaxMultiprogramming(pe); got != 8 {
			t.Errorf("PE %d max multiprogramming = %d, want 8", pe, got)
		}
	}
	for pe := 16; pe <= 20; pe++ {
		if got := cfg.MaxMultiprogramming(pe); got != 4 {
			t.Errorf("PE %d max multiprogramming = %d, want 4", pe, got)
		}
	}
	if got := cfg.MaxMultiprogramming(3); got != 4 {
		t.Errorf("PE 3 max multiprogramming = %d, want 4 (its own slots)", got)
	}
	if got := cfg.TotalSlots(); got != 16 {
		t.Errorf("total slots = %d, want 16", got)
	}
	wantPEs := []int{3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	if got := cfg.UsedPEs(); !reflect.DeepEqual(got, wantPEs) {
		t.Errorf("used PEs = %v", got)
	}
}

func TestSimpleConfiguration(t *testing.T) {
	cfg := Simple(4, 3)
	if err := cfg.Validate(flex.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if got := cfg.ClusterNumbers(); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("cluster numbers = %v", got)
	}
	if cfg.Cluster(1).PrimaryPE != 3 || cfg.Cluster(4).PrimaryPE != 6 {
		t.Fatal("primary PEs not assigned from PE 3 upward")
	}
	if cfg.Cluster(2).ForceSize() != 1 {
		t.Fatal("Simple clusters should have no secondaries")
	}
	withForces := cfg.WithForces(2, 10, 11, 12)
	if withForces.Cluster(2).ForceSize() != 4 {
		t.Fatal("WithForces did not add secondaries")
	}
	if cfg.Cluster(2).ForceSize() != 1 {
		t.Fatal("WithForces must not mutate the original")
	}
}

func TestValidateRejections(t *testing.T) {
	machine := flex.DefaultConfig()
	base := func() *Configuration { return Simple(2, 2) }

	cases := []struct {
		name   string
		mutate func(*Configuration)
	}{
		{"no clusters", func(c *Configuration) { c.Clusters = nil }},
		{"too many clusters", func(c *Configuration) {
			c.Clusters = nil
			for i := 1; i <= 19; i++ {
				c.Clusters = append(c.Clusters, Cluster{Number: i, PrimaryPE: 3 + (i-1)%18, Slots: 1})
			}
		}},
		{"cluster number zero", func(c *Configuration) { c.Clusters[0].Number = 0 }},
		{"cluster number too big", func(c *Configuration) { c.Clusters[0].Number = 19 }},
		{"duplicate cluster number", func(c *Configuration) { c.Clusters[1].Number = c.Clusters[0].Number }},
		{"primary on unix PE", func(c *Configuration) { c.Clusters[0].PrimaryPE = 1 }},
		{"primary out of range", func(c *Configuration) { c.Clusters[0].PrimaryPE = 21 }},
		{"shared primary PE", func(c *Configuration) { c.Clusters[1].PrimaryPE = c.Clusters[0].PrimaryPE }},
		{"zero slots", func(c *Configuration) { c.Clusters[0].Slots = 0 }},
		{"secondary on unix PE", func(c *Configuration) { c.Clusters[0].SecondaryPEs = []int{2} }},
		{"duplicate secondary", func(c *Configuration) { c.Clusters[0].SecondaryPEs = []int{7, 7} }},
		{"unknown trace event", func(c *Configuration) { c.TraceEvents = []string{"NOT-AN-EVENT"} }},
		{"negative time limit", func(c *Configuration) { c.TimeLimit = -time.Second }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(cfg)
		if err := cfg.Validate(machine); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestValidTraceEventsAccepted(t *testing.T) {
	cfg := Simple(1, 1)
	for _, k := range trace.Kinds() {
		cfg.TraceEvents = append(cfg.TraceEvents, k.String())
	}
	if err := cfg.Validate(flex.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := Section9Example()
	cfg.TimeLimit = 90 * time.Second
	cfg.TraceEvents = []string{"TASK-INIT", "FORCE-SPLIT"}

	var buf bytes.Buffer
	if err := cfg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, loaded) {
		t.Fatalf("round trip mismatch:\nsaved  %+v\nloaded %+v", cfg, loaded)
	}
	if err := loaded.Validate(flex.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestLoadHandlesCommentsAndBlankLines(t *testing.T) {
	text := `
# a saved PISCES 2 configuration
pisces-configuration "demo"

cluster 1 primary 3 slots 2
cluster 2 primary 4 slots 2 secondaries 7,8,9
timelimit 1m30s
trace MSG-SEND
`
	cfg, err := Load(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "demo" {
		t.Errorf("name = %q", cfg.Name)
	}
	if cfg.TimeLimit != 90*time.Second {
		t.Errorf("time limit = %v", cfg.TimeLimit)
	}
	if got := cfg.Cluster(2).SecondaryPEs; !reflect.DeepEqual(got, []int{7, 8, 9}) {
		t.Errorf("secondaries = %v", got)
	}
	if !reflect.DeepEqual(cfg.TraceEvents, []string{"MSG-SEND"}) {
		t.Errorf("trace events = %v", cfg.TraceEvents)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"cluster 1 primary 3 slots 2\n",                                             // missing header
		"pisces-configuration \"x\"\nbogus directive\n",                             // unknown directive
		"pisces-configuration \"x\"\ncluster one primary 3 slots 2",                 // bad number
		"pisces-configuration \"x\"\ncluster 1 primary 3\n",                         // too short
		"pisces-configuration \"x\"\ncluster 1 primary 3 slots z\n",                 // bad slots
		"pisces-configuration \"x\"\ncluster 1 primary q slots 2\n",                 // bad primary
		"pisces-configuration \"x\"\ncluster 1 nope 3 slots 2\n",                    // unknown attribute
		"pisces-configuration \"x\"\ntimelimit forever\n",                           // bad duration
		"pisces-configuration \"x\"\ntimelimit\n",                                   // missing duration
		"pisces-configuration \"x\"\ntrace\n",                                       // missing event
		"pisces-configuration \"x\"\ncluster 1 primary 3 slots 2 secondaries a,b\n", // bad secondaries
	}
	for i, text := range cases {
		if _, err := Load(strings.NewReader(text)); err == nil {
			t.Errorf("case %d: expected load error for %q", i, text)
		}
	}
}

func TestStringSummary(t *testing.T) {
	cfg := Section9Example()
	cfg.TimeLimit = time.Minute
	cfg.TraceEvents = []string{"BARRIER"}
	s := cfg.String()
	for _, want := range []string{"section-9-example", "cluster 1", "cluster 4", "primary PE 6", "time limit", "BARRIER"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	cfg := Section9Example()
	clone := cfg.Clone()
	clone.Cluster(2).SecondaryPEs[0] = 99
	clone.Cluster(1).Slots = 7
	if cfg.Cluster(2).SecondaryPEs[0] == 99 {
		t.Fatal("Clone shares secondary PE slices with the original")
	}
	if cfg.Cluster(1).Slots == 7 {
		t.Fatal("Clone shares cluster records with the original")
	}
}

// Property: Simple(n, s) is always valid for 1 <= n <= 18 and s >= 1, and its
// save/load round trip is the identity.
func TestQuickSimpleRoundTrip(t *testing.T) {
	f := func(nRaw, sRaw uint8) bool {
		n := int(nRaw%18) + 1
		s := int(sRaw%6) + 1
		cfg := Simple(n, s)
		if err := cfg.Validate(flex.DefaultConfig()); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := cfg.Save(&buf); err != nil {
			return false
		}
		loaded, err := Load(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(cfg, loaded)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxMultiprogramming of a PE never exceeds the total slots of the
// configuration and is zero for PEs the configuration does not use.
func TestQuickMaxMultiprogrammingBounds(t *testing.T) {
	cfg := Section9Example()
	f := func(peRaw uint8) bool {
		pe := int(peRaw%25) + 1
		mp := cfg.MaxMultiprogramming(pe)
		if mp < 0 || mp > cfg.TotalSlots() {
			return false
		}
		used := false
		for _, u := range cfg.UsedPEs() {
			if u == pe {
				used = true
			}
		}
		if !used && mp != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
