package config

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/flex"
)

// script joins menu answers with newlines.
func script(answers ...string) string { return strings.Join(answers, "\n") + "\n" }

func TestBuilderFullDialogue(t *testing.T) {
	answers := script(
		"2",                     // number of clusters
		"3",                     // cluster 1 primary PE
		"4",                     // cluster 1 slots
		"7,8,9",                 // cluster 1 secondaries
		"4",                     // cluster 2 primary PE
		"2",                     // cluster 2 slots
		"",                      // cluster 2 secondaries: none
		"90s",                   // time limit
		"MSG-SEND, FORCE-SPLIT", // trace events
	)
	var out bytes.Buffer
	b := NewBuilder(flex.DefaultConfig(), strings.NewReader(answers), &out)
	cfg, err := b.Build("menu-built")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "menu-built" || len(cfg.Clusters) != 2 {
		t.Fatalf("cfg = %+v", cfg)
	}
	c1 := cfg.Cluster(1)
	if c1.PrimaryPE != 3 || c1.Slots != 4 || !reflect.DeepEqual(c1.SecondaryPEs, []int{7, 8, 9}) {
		t.Errorf("cluster 1 = %+v", c1)
	}
	c2 := cfg.Cluster(2)
	if c2.PrimaryPE != 4 || c2.Slots != 2 || len(c2.SecondaryPEs) != 0 {
		t.Errorf("cluster 2 = %+v", c2)
	}
	if cfg.TimeLimit != 90*time.Second {
		t.Errorf("time limit = %v", cfg.TimeLimit)
	}
	if !reflect.DeepEqual(cfg.TraceEvents, []string{"MSG-SEND", "FORCE-SPLIT"}) {
		t.Errorf("trace events = %v", cfg.TraceEvents)
	}
	if err := cfg.Validate(flex.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CONFIGURATION ENVIRONMENT", "cluster 1", "configuration complete"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("menu transcript missing %q", want)
		}
	}
}

func TestBuilderDefaultsAndAllTrace(t *testing.T) {
	// Empty answers accept every default; "ALL" enables every trace event.
	answers := script(
		"",    // clusters: default 2
		"",    // cluster 1 primary: default 3
		"",    // cluster 1 slots: default 4
		"",    // cluster 1 secondaries: none
		"",    // cluster 2 primary: default 4
		"",    // cluster 2 slots: default 4
		"",    // cluster 2 secondaries: none
		"",    // no time limit
		"ALL", // all trace events
	)
	b := NewBuilder(flex.DefaultConfig(), strings.NewReader(answers), &bytes.Buffer{})
	cfg, err := b.Build("defaults")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Clusters) != 2 || cfg.Cluster(1).PrimaryPE != 3 || cfg.Cluster(2).PrimaryPE != 4 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.TimeLimit != 0 {
		t.Errorf("time limit = %v", cfg.TimeLimit)
	}
	if len(cfg.TraceEvents) != 8 {
		t.Errorf("ALL should enable 8 events, got %v", cfg.TraceEvents)
	}
}

func TestBuilderReprompstOnBadAnswers(t *testing.T) {
	// Bad answers are re-asked rather than failing the dialogue: a cluster
	// count out of range, a primary PE on a Unix PE, a malformed secondary
	// list, an unparseable duration, and an unknown trace event.
	answers := script(
		"99", "1", // bad cluster counts, then accept 1 valid
		"1", "oops", "5", // bad primary answers, then PE 5
		"0", "3", // bad slot count, then 3
		"7,x", "2,7", "7", // malformed, then unix PE in list, then valid
		"soon", "10s", // bad duration, then valid
		"NOT-AN-EVENT", "LOCK", // unknown event, then valid
	)
	var out bytes.Buffer
	b := NewBuilder(flex.DefaultConfig(), strings.NewReader(answers), &out)
	cfg, err := b.Build("retries")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Clusters) != 1 {
		t.Fatalf("clusters = %d", len(cfg.Clusters))
	}
	cl := cfg.Cluster(1)
	if cl.PrimaryPE != 5 || cl.Slots != 3 || !reflect.DeepEqual(cl.SecondaryPEs, []int{7}) {
		t.Errorf("cluster = %+v", cl)
	}
	if cfg.TimeLimit != 10*time.Second || !reflect.DeepEqual(cfg.TraceEvents, []string{"LOCK"}) {
		t.Errorf("limit %v events %v", cfg.TimeLimit, cfg.TraceEvents)
	}
	if !strings.Contains(out.String(), "please answer") {
		t.Error("transcript does not show re-prompts")
	}
}

func TestBuilderEOF(t *testing.T) {
	b := NewBuilder(flex.DefaultConfig(), strings.NewReader("2\n"), &bytes.Buffer{})
	if _, err := b.Build("eof"); err == nil {
		t.Fatal("truncated dialogue should fail")
	}
}
