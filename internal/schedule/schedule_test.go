package schedule

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/flex"
	"repro/internal/mmos"
)

func testKernel() (*mmos.Kernel, []*flex.PE) {
	m := flex.MustNewMachine(flex.DefaultConfig())
	k := mmos.NewKernel(m)
	var pes []*flex.PE
	for _, n := range []int{3, 4, 5, 6} {
		pes = append(pes, m.PE(n))
	}
	return k, pes
}

// diamond builds a diamond-shaped graph a -> (b, c) -> d and records the
// execution order.
func diamond(order *[]string, mu *sync.Mutex) *Graph {
	add := func(name string) func() {
		return func() {
			mu.Lock()
			*order = append(*order, name)
			mu.Unlock()
		}
	}
	g := NewGraph()
	g.Call("a", 10, add("a"))
	g.Call("b", 10, add("b")).Depends("b", "a")
	g.Call("c", 10, add("c")).Depends("c", "a")
	g.Call("d", 10, add("d")).Depends("d", "b", "c")
	return g
}

func indexOf(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return -1
}

func TestRunSerialRespectsDependencies(t *testing.T) {
	var mu sync.Mutex
	var order []string
	g := diamond(&order, &mu)
	res, err := g.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 4 || g.Len() != 4 {
		t.Fatalf("completed %v", res.Completed)
	}
	if indexOf(order, "a") != 0 || indexOf(order, "d") != 3 {
		t.Fatalf("serial order %v violates dependencies", order)
	}
}

func TestRunParallelRespectsDependencies(t *testing.T) {
	var mu sync.Mutex
	var order []string
	g := diamond(&order, &mu)
	k, pes := testKernel()
	res, err := g.Run(k, pes)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 4 {
		t.Fatalf("completed %v", res.Completed)
	}
	mu.Lock()
	defer mu.Unlock()
	if indexOf(order, "a") != 0 {
		t.Errorf("a must run first: %v", order)
	}
	if indexOf(order, "d") != 3 {
		t.Errorf("d must run last: %v", order)
	}
	total := 0
	for _, n := range res.PerWorker {
		total += n
	}
	if total != 4 {
		t.Errorf("per-worker counts %v do not sum to 4", res.PerWorker)
	}
}

func TestRunDistributesIndependentWork(t *testing.T) {
	// A wide graph of independent units must use more than one worker.  Each
	// unit takes a little real time so the work queue cannot be drained by a
	// single worker before the others start.
	g := NewGraph()
	var count atomic.Int64
	for i := 0; i < 32; i++ {
		name := string(rune('A' + i%26))
		g.Call(name+string(rune('0'+i/26)), 5, func() {
			count.Add(1)
			time.Sleep(2 * time.Millisecond)
		})
	}
	k, pes := testKernel()
	res, err := g.Run(k, pes)
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 32 {
		t.Fatalf("ran %d units", count.Load())
	}
	busy := 0
	for _, n := range res.PerWorker {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("automatic mapping used %d worker(s), expected at least 2", busy)
	}
	// The simulated machine accumulated the work's tick cost.
	if k.Machine().TotalTicks() < 32*5 {
		t.Errorf("total ticks %d, want >= %d", k.Machine().TotalTicks(), 32*5)
	}
}

func TestValidationErrors(t *testing.T) {
	// Missing dependency definition.
	g := NewGraph()
	g.Call("a", 1, func() {})
	g.Depends("a", "ghost")
	if _, err := g.RunSerial(); err == nil {
		t.Error("undefined dependency accepted")
	}

	// Depends before Call leaves the unit without a body.
	g2 := NewGraph()
	g2.Depends("x", "y")
	g2.Call("y", 1, func() {})
	if _, err := g2.RunSerial(); err == nil {
		t.Error("unit without a body accepted")
	}

	// Cycle.
	g3 := NewGraph()
	g3.Call("a", 1, func() {}).Depends("a", "b")
	g3.Call("b", 1, func() {}).Depends("b", "a")
	if _, err := g3.RunSerial(); err != ErrCycle {
		t.Errorf("cycle: got %v", err)
	}

	// No PEs.
	g4 := NewGraph()
	g4.Call("a", 1, func() {})
	k, _ := testKernel()
	if _, err := g4.Run(k, nil); err == nil {
		t.Error("run with no PEs accepted")
	}
}

// Property: for random layered DAGs, parallel execution completes every unit
// exactly once and never runs a unit before its dependencies.
func TestQuickParallelCorrectness(t *testing.T) {
	k, pes := testKernel()
	f := func(widths [3]uint8) bool {
		g := NewGraph()
		var mu sync.Mutex
		finished := make(map[string]bool)
		okOrder := true
		var names [][]string
		for layer := 0; layer < 3; layer++ {
			w := int(widths[layer]%3) + 1
			var layerNames []string
			for i := 0; i < w; i++ {
				name := string(rune('a'+layer)) + string(rune('0'+i))
				deps := []string{}
				if layer > 0 {
					deps = names[layer-1]
				}
				depsCopy := append([]string(nil), deps...)
				g.Call(name, 1, func() {
					mu.Lock()
					for _, d := range depsCopy {
						if !finished[d] {
							okOrder = false
						}
					}
					finished[name] = true
					mu.Unlock()
				})
				if len(deps) > 0 {
					g.Depends(name, deps...)
				}
				layerNames = append(layerNames, name)
			}
			names = append(names, layerNames)
		}
		res, err := g.Run(k, pes)
		if err != nil {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		return okOrder && len(res.Completed) == len(finished) && len(finished) == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVirtualDiamond(t *testing.T) {
	var mu sync.Mutex
	var order []string
	g := diamond(&order, &mu)
	res, makespan, err := g.RunVirtual(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 4 {
		t.Fatalf("completed %v", res.Completed)
	}
	// a (10) then b and c in parallel (10) then d (10) = 30.
	if makespan != 30 {
		t.Fatalf("makespan = %d, want 30", makespan)
	}
	// One worker: fully serial.
	g2 := diamond(&order, &mu)
	_, serial, err := g2.RunVirtual(1)
	if err != nil {
		t.Fatal(err)
	}
	if serial != 40 {
		t.Fatalf("serial makespan = %d, want 40", serial)
	}
	if _, _, err := g2.RunVirtual(0); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestRunVirtualWideGraphScales(t *testing.T) {
	g := NewGraph()
	for j := 0; j < 16; j++ {
		g.Call(string(rune('a'+j)), 10, func() {})
	}
	_, ms4, err := g.RunVirtual(4)
	if err != nil {
		t.Fatal(err)
	}
	if ms4 != 40 {
		t.Fatalf("16 independent units of cost 10 on 4 workers: makespan %d, want 40", ms4)
	}
	_, ms16, err := g.RunVirtual(16)
	if err != nil {
		t.Fatal(err)
	}
	if ms16 != 10 {
		t.Fatalf("one unit per worker: makespan %d, want 10", ms16)
	}
}

func BenchmarkScheduleWideGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		for j := 0; j < 64; j++ {
			g.Call(string(rune('a'+j%26))+string(rune('0'+j/26)), 1, func() {})
		}
		k, pes := testKernel()
		if _, err := g.Run(k, pes); err != nil {
			b.Fatal(err)
		}
	}
}
