// Package schedule implements a small work-queue scheduler in the style of
// Dongarra and Sorensen's SCHEDULE package, which the paper contrasts with
// PISCES 2 in Section 3: "The programmer defines the dependency relations
// between the routines (via SCHEDULE calls), and then SCHEDULE maps the
// program onto the available hardware in an appropriate way for parallel
// execution.  In contrast, PISCES 2 expects the programmer to control the
// mapping."
//
// The package is the baseline for the E7 comparison experiments: the same
// task graph is expressed once as a SCHEDULE-style dependency graph with
// automatic mapping, and once as PISCES tasks and forces with an explicit
// configuration, and the two are compared on the simulated machine.
//
// Units communicate through shared variables (ordinary Go closures over
// shared data), exactly as SCHEDULE's Fortran routines communicated through
// COMMON; the scheduler provides only dependency ordering and worker
// placement.
package schedule

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/flex"
	"repro/internal/mmos"
)

// ErrCycle is returned when the dependency graph has a cycle.
var ErrCycle = errors.New("schedule: dependency graph has a cycle")

// Unit is one schedulable routine.
type Unit struct {
	// Name identifies the unit.
	Name string
	// Work is the routine body.
	Work func()
	// Cost is the simulated tick cost charged to the PE that runs the unit.
	Cost int64

	deps []string
}

// Graph is a dependency graph of units, built by Call/Depends in the style of
// SCHEDULE's "schedule calls".
type Graph struct {
	mu    sync.Mutex
	units map[string]*Unit
	order []string
}

// NewGraph returns an empty dependency graph.
func NewGraph() *Graph {
	return &Graph{units: make(map[string]*Unit)}
}

// Call declares a unit of work.  Declaring a name twice replaces its body.
func (g *Graph) Call(name string, cost int64, work func()) *Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, exists := g.units[name]; !exists {
		g.order = append(g.order, name)
	}
	g.units[name] = &Unit{Name: name, Work: work, Cost: cost}
	return g
}

// Depends records that unit name cannot start until all of the listed units
// have completed.
func (g *Graph) Depends(name string, on ...string) *Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	if u, ok := g.units[name]; ok {
		u.deps = append(u.deps, on...)
	} else {
		g.order = append(g.order, name)
		g.units[name] = &Unit{Name: name, deps: append([]string(nil), on...)}
	}
	return g
}

// Len returns the number of declared units.
func (g *Graph) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.units)
}

// validate checks that every dependency exists and the graph is acyclic, and
// returns a topological order.
func (g *Graph) validate() ([]string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, u := range g.units {
		if u.Work == nil {
			return nil, fmt.Errorf("schedule: unit %q was named in Depends but never defined by Call", u.Name)
		}
		for _, d := range u.deps {
			if _, ok := g.units[d]; !ok {
				return nil, fmt.Errorf("schedule: unit %q depends on undefined unit %q", u.Name, d)
			}
		}
	}
	// Kahn's algorithm for cycle detection and a deterministic topo order.
	indeg := make(map[string]int, len(g.units))
	succs := make(map[string][]string, len(g.units))
	for _, name := range g.order {
		indeg[name] = len(g.units[name].deps)
		for _, d := range g.units[name].deps {
			succs[d] = append(succs[d], name)
		}
	}
	var ready []string
	for _, name := range g.order {
		if indeg[name] == 0 {
			ready = append(ready, name)
		}
	}
	var topo []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		topo = append(topo, n)
		for _, s := range succs[n] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(topo) != len(g.units) {
		return nil, ErrCycle
	}
	return topo, nil
}

// Result reports what a Run did.
type Result struct {
	// Completed lists unit names in completion order.
	Completed []string
	// PerWorker counts units executed by each worker index.
	PerWorker []int
}

// RunSerial executes the graph on the calling goroutine in a topological
// order — the sequential baseline.
func (g *Graph) RunSerial() (*Result, error) {
	topo, err := g.validate()
	if err != nil {
		return nil, err
	}
	res := &Result{PerWorker: make([]int, 1)}
	for _, name := range topo {
		g.unit(name).Work()
		res.Completed = append(res.Completed, name)
		res.PerWorker[0]++
	}
	return res, nil
}

func (g *Graph) unit(name string) *Unit {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.units[name]
}

// RunVirtual simulates the graph's execution by `workers` identical workers
// in virtual time: whenever a worker becomes idle it takes the oldest ready
// unit, spending the unit's Cost in simulated time.  It returns the result,
// the makespan in simulated time, and an error for invalid graphs.  Unit
// bodies are still executed (once each, on the calling goroutine) so that
// results computed through shared variables are available afterwards.
//
// RunVirtual is the measurement form used by the comparison experiments: the
// scheduling decisions a dynamic work queue would make are reproduced in
// simulated time, independent of how many host CPUs the simulator has.
func (g *Graph) RunVirtual(workers int) (*Result, int64, error) {
	topo, err := g.validate()
	if err != nil {
		return nil, 0, err
	}
	if workers <= 0 {
		return nil, 0, fmt.Errorf("schedule: worker count must be positive, got %d", workers)
	}

	remaining := make(map[string]int, len(topo))
	succs := make(map[string][]string, len(topo))
	readyAt := make(map[string]int64, len(topo)) // earliest virtual time the unit may start
	var ready []string
	for _, name := range topo {
		u := g.unit(name)
		remaining[name] = len(u.deps)
		for _, d := range u.deps {
			succs[d] = append(succs[d], name)
		}
		if len(u.deps) == 0 {
			ready = append(ready, name)
		}
	}

	workerFree := make([]int64, workers)
	res := &Result{PerWorker: make([]int, workers)}
	var makespan int64
	for len(res.Completed) < len(topo) {
		if len(ready) == 0 {
			return nil, 0, fmt.Errorf("schedule: no ready units but %d still incomplete", len(topo)-len(res.Completed))
		}
		// Oldest ready unit goes to the earliest-free worker, but cannot
		// start before its dependencies finished.
		name := ready[0]
		ready = ready[1:]
		w := 0
		for i := 1; i < workers; i++ {
			if workerFree[i] < workerFree[w] {
				w = i
			}
		}
		start := workerFree[w]
		if r := readyAt[name]; r > start {
			start = r
		}
		u := g.unit(name)
		u.Work()
		finish := start + u.Cost
		workerFree[w] = finish
		if finish > makespan {
			makespan = finish
		}
		res.Completed = append(res.Completed, name)
		res.PerWorker[w]++
		for _, s := range succs[name] {
			remaining[s]--
			if readyAt[s] < finish {
				readyAt[s] = finish
			}
			if remaining[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return res, makespan, nil
}

// Run executes the graph on the simulated machine: SCHEDULE-style automatic
// mapping spawns one worker process on each of the given PEs and hands ready
// units to whichever worker asks next.  The programmer controls nothing but
// the worker count — that is exactly the contrast with PISCES the paper
// draws.
func (g *Graph) Run(kernel *mmos.Kernel, pes []*flex.PE) (*Result, error) {
	topo, err := g.validate()
	if err != nil {
		return nil, err
	}
	if len(pes) == 0 {
		return nil, fmt.Errorf("schedule: no PEs to run on")
	}

	// Shared ready queue and dependency bookkeeping, protected by one lock —
	// the "shared variable" style of SCHEDULE.
	var mu sync.Mutex
	remaining := make(map[string]int, len(topo))
	succs := make(map[string][]string, len(topo))
	var ready []string
	for _, name := range topo {
		u := g.unit(name)
		remaining[name] = len(u.deps)
		for _, d := range u.deps {
			succs[d] = append(succs[d], name)
		}
		if len(u.deps) == 0 {
			ready = append(ready, name)
		}
	}
	res := &Result{PerWorker: make([]int, len(pes))}
	done := 0
	total := len(topo)
	cond := sync.NewCond(&mu)

	worker := func(idx int) func(*mmos.Proc) {
		return func(p *mmos.Proc) {
			for {
				var name string
				finished := false
				// Claim the next ready unit, waiting without the simulated
				// CPU while none is available.
				p.BlockFn(func() {
					mu.Lock()
					for len(ready) == 0 && done < total {
						cond.Wait()
					}
					if len(ready) == 0 {
						finished = true
					} else {
						name = ready[0]
						ready = ready[1:]
					}
					mu.Unlock()
				})
				if finished {
					return
				}

				u := g.unit(name)
				u.Work()
				p.Charge(u.Cost)

				mu.Lock()
				done++
				res.Completed = append(res.Completed, name)
				res.PerWorker[idx]++
				for _, s := range succs[name] {
					remaining[s]--
					if remaining[s] == 0 {
						ready = append(ready, s)
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}
	}

	procs := make([]*mmos.Proc, 0, len(pes))
	for i, pe := range pes {
		p, err := kernel.Spawn(pe, fmt.Sprintf("schedule-worker-%d", i), 0, worker(i))
		if err != nil {
			return nil, err
		}
		procs = append(procs, p)
	}
	for _, p := range procs {
		<-p.Done()
	}
	if len(res.Completed) != total {
		return nil, fmt.Errorf("schedule: completed %d of %d units", len(res.Completed), total)
	}
	return res, nil
}
