// Package stats provides the small statistical and table-rendering helpers
// used by the experiments harness (cmd/experiments) to report the paper's
// tables and figures: means, standard deviations, speedups, and fixed-width
// text tables.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Min returns the smallest value (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Speedup returns serial/parallel, the conventional speedup ratio; it returns
// 0 when parallel is 0.
func Speedup(serial, parallel float64) float64 {
	if parallel == 0 {
		return 0
	}
	return serial / parallel
}

// Efficiency returns Speedup/workers as a fraction in [0, ...]; it returns 0
// when workers is 0.
func Efficiency(serial, parallel float64, workers int) float64 {
	if workers == 0 {
		return 0
	}
	return Speedup(serial, parallel) / float64(workers)
}

// Percent returns 100*part/whole (0 when whole is 0).
func Percent(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * part / whole
}

// Table renders fixed-width text tables for experiment reports.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) *Table {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// AddRowf appends a row of formatted cells; each cell is a (format, value)
// application via fmt.Sprintf when given as Cell, or used verbatim.
func (t *Table) AddRowf(cells ...any) *Table {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3g", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	return t.AddRow(row...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
