package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	s := NewCounters()
	a := s.Counter("alpha")
	b := s.Counter("beta")
	a.Inc()
	a.Add(4)
	b.Add(2)
	if s.Counter("alpha") != a {
		t.Error("Counter should return the same counter for the same name")
	}
	if got := s.Get("alpha"); got != 5 {
		t.Errorf("alpha = %d, want 5", got)
	}
	if got := s.Get("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
	snap := s.Snapshot()
	if snap["alpha"] != 5 || snap["beta"] != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	if names := s.Names(); len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("names = %v, want registration order", names)
	}
}

func TestCountersConcurrent(t *testing.T) {
	s := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.Counter("shared")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := s.Get("shared"); got != 8000 {
		t.Errorf("shared = %d, want 8000", got)
	}
}

// TestCountersRace mixes registration, bumps, snapshots and table renders
// from parallel goroutines; under -race this is the concurrency guard for
// the shared counter set.
func TestCountersRace(t *testing.T) {
	s := NewCounters()
	names := []string{"a", "b", "c", "d", "e"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				s.Counter(names[(g+j)%len(names)]).Inc()
				if j%50 == 0 {
					s.Snapshot()
					s.Names()
					_ = s.Table("t").String()
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, v := range s.Snapshot() {
		total += v
	}
	if total != 8*500 {
		t.Errorf("total = %d, want %d", total, 8*500)
	}
	if len(s.Names()) != len(names) {
		t.Errorf("names = %v", s.Names())
	}
}

func TestCountersTable(t *testing.T) {
	s := NewCounters()
	s.Counter("statements").Add(12)
	s.Counter("sends").Add(3)
	out := s.Table("interpreter activity").String()
	if !strings.Contains(out, "interpreter activity") ||
		!strings.Contains(out, "statements") || !strings.Contains(out, "12") {
		t.Errorf("table rendering wrong:\n%s", out)
	}
	// Registration order, not alphabetical.
	if strings.Index(out, "statements") > strings.Index(out, "sends") {
		t.Errorf("counters not in registration order:\n%s", out)
	}
}
