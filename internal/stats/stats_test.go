package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Error("empty/short-slice behaviour wrong")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5) {
		t.Errorf("mean = %v", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Errorf("stddev = %v", got)
	}
	if Min(xs) != 2 || Max(xs) != 9 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max should be 0")
	}
}

func TestSpeedupEfficiencyPercent(t *testing.T) {
	if !almost(Speedup(100, 25), 4) {
		t.Error("speedup")
	}
	if Speedup(100, 0) != 0 {
		t.Error("speedup by zero")
	}
	if !almost(Efficiency(100, 25, 8), 0.5) {
		t.Error("efficiency")
	}
	if Efficiency(100, 25, 0) != 0 {
		t.Error("efficiency with zero workers")
	}
	if !almost(Percent(1, 8), 12.5) || Percent(1, 0) != 0 {
		t.Error("percent")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Storage overhead", "quantity", "bytes", "percent")
	tb.AddRow("system tables", "2880", "0.122")
	tb.AddRowf("local per PE", 24576, 2.34375)
	tb.AddRowf("mixed", "text", int64(7), 1.5)
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	s := tb.String()
	for _, want := range []string{"Storage overhead", "quantity", "system tables", "24576", "2.34", "----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Title, header, rule, three rows.
	if len(lines) != 6 {
		t.Errorf("table has %d lines:\n%s", len(lines), s)
	}
	// Extra cells are dropped, missing cells blank.
	tb2 := NewTable("", "a", "b")
	tb2.AddRow("1", "2", "3").AddRow("only")
	if !strings.Contains(tb2.String(), "only") || strings.Contains(tb2.String(), "3") {
		t.Errorf("cell clipping wrong:\n%s", tb2.String())
	}
}

// Property: mean lies between min and max, and speedup of identical times is 1.
func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			// Skip non-finite and extreme values whose sum would overflow;
			// experiment data are tick counts and byte counts, well inside
			// this range.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		if m < Min(xs)-1e-6 || m > Max(xs)+1e-6 {
			return false
		}
		return almost(Speedup(42, 42), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
