package stats

import (
	"sync"
	"sync/atomic"
)

// Counter is one monotonically named run-time counter.  The zero value is
// ready to use; Add and Load are safe for concurrent use, so hot interpreter
// and run-time paths can hold a *Counter and bump it without locking.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.n.Load() }

// Counters is a named set of activity counters.  Registration order is
// remembered so reports render deterministically.  It backs the interpreter
// counters of internal/pfi and is reusable by any subsystem that wants cheap
// named counters with table rendering.
type Counters struct {
	mu     sync.Mutex
	order  []string
	byName map[string]*Counter
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{byName: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, registering it on first
// use.  The returned pointer may be retained and bumped lock-free.
func (s *Counters) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.byName[name]; ok {
		return c
	}
	c := &Counter{}
	s.byName[name] = c
	s.order = append(s.order, name)
	return c
}

// Get returns the current count of the named counter (0 if never registered).
func (s *Counters) Get(name string) int64 {
	s.mu.Lock()
	c, ok := s.byName[name]
	s.mu.Unlock()
	if !ok {
		return 0
	}
	return c.Load()
}

// Names returns the registered counter names in registration order.
func (s *Counters) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Snapshot returns the current value of every registered counter.
func (s *Counters) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.byName))
	for name, c := range s.byName {
		out[name] = c.Load()
	}
	return out
}

// Table renders the counters as a fixed-width report table in registration
// order.
func (s *Counters) Table(title string) *Table {
	t := NewTable(title, "counter", "count")
	for _, name := range s.Names() {
		t.AddRowf(name, s.Get(name))
	}
	return t
}
