// Package pfc implements the Pisces Fortran preprocessor (paper, Sections 10
// and 11): "A preprocessor converts Pisces Fortran programs into standard
// Fortran 77, with embedded calls on the Pisces run-time library.  The Unix
// Fortran compiler then compiles the preprocessed programs."
//
// A Pisces Fortran program is a set of TASKTYPE definitions in which ordinary
// Fortran 77 and the Pisces extensions are intermixed.  The preprocessor
// recognises the extension statements described in the paper —
//
//	TASKTYPE <name> (<params>) ... END TASKTYPE
//	ON <cluster> INITIATE <tasktype> (<args>)
//	TO <taskid> SEND <msgtype> (<args>)
//	ACCEPT <number> OF <msgtype>... DELAY <t> THEN ... END ACCEPT
//	SIGNAL <msgtype> / HANDLER <msgtype> declarations
//	FORCESPLIT
//	SHARED COMMON /<name>/ <list>
//	LOCK <names>
//	BARRIER ... END BARRIER
//	CRITICAL <lock> ... END CRITICAL
//	PRESCHED DO <n> <var> = <lo>, <hi>[, <step>]
//	SELFSCHED DO <n> <var> = <lo>, <hi>[, <step>]
//	PARSEG / NEXTSEG / ENDSEG
//	TASKID <names> / WINDOW <names> declarations
//
// — and rewrites each of them into standard Fortran with CALL statements on
// the PISCES run-time library, passing every other line through unchanged.
// Ordinary Fortran 77 subprograms therefore require no changes, exactly as
// the paper promises.
//
// Parse produces a faithful statement-level AST (every Pisces extension is a
// structured Stmt, never pre-rendered text), which has two consumers: Emit in
// this package generates the Fortran 77 translation, and internal/pfi
// interprets the same AST directly on an in-memory virtual machine, so .pf
// programs can be executed end-to-end without a Fortran compiler.  See
// internal/pfi for the execution path.
package pfc

import (
	"fmt"
	"strings"
)

// Options tune the preprocessor output.
type Options struct {
	// RuntimePrefix is prepended to generated run-time entry points;
	// the default "PS" yields names such as PSINIT and PSSEND.
	RuntimePrefix string
	// KeepComments controls whether full-line comments are copied through.
	KeepComments bool
}

func (o Options) prefix() string {
	if o.RuntimePrefix == "" {
		return "PS"
	}
	return o.RuntimePrefix
}

// Error is a preprocessing error with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("pisces fortran: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Result is the outcome of preprocessing one source file.
type Result struct {
	// Fortran is the generated standard Fortran 77 text.
	Fortran string
	// Program is the parsed structure of the source.
	Program *Program
}

// Preprocess translates Pisces Fortran source text into standard Fortran 77
// with calls on the PISCES run-time library.
func Preprocess(src string, opts Options) (*Result, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	out, err := Emit(prog, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Fortran: out, Program: prog}, nil
}

// --- program structure -------------------------------------------------------

// Program is a parsed Pisces Fortran source file.
type Program struct {
	// TaskTypes lists the tasktype definitions in source order.
	TaskTypes []*TaskTypeDef
	// Other holds source lines outside any TASKTYPE (ordinary subroutines,
	// handler subroutines, comments), in source order, passed through.
	Other []Line
}

// TaskTypeNames returns the names of the declared tasktypes.
func (p *Program) TaskTypeNames() []string {
	out := make([]string, len(p.TaskTypes))
	for i, tt := range p.TaskTypes {
		out[i] = tt.Name
	}
	return out
}

// TaskType returns the definition of the named tasktype, or nil.
func (p *Program) TaskType(name string) *TaskTypeDef {
	for _, tt := range p.TaskTypes {
		if strings.EqualFold(tt.Name, name) {
			return tt
		}
	}
	return nil
}

// TaskTypeDef is one TASKTYPE ... END TASKTYPE definition.
type TaskTypeDef struct {
	Name   string
	Params []string
	Line   int
	// Body is the statement sequence of the tasktype.
	Body []Stmt
	// Handlers and Signals are the declared message types.
	Handlers []string
	Signals  []string
	// SharedCommons, Locks, TaskIDVars, WindowVars are declared names.
	SharedCommons []SharedCommonDecl
	Locks         []string
	TaskIDVars    []string
	WindowVars    []string
	// UsesForce reports whether the body contains a FORCESPLIT.
	UsesForce bool
}

// SharedCommonDecl is a SHARED COMMON /name/ list declaration.
type SharedCommonDecl struct {
	Name string
	Vars []string
	Line int
}

// Line is one passed-through source line.
type Line struct {
	Number int
	Text   string
}

// StmtKind identifies the kind of a parsed statement.
type StmtKind int

// Statement kinds.
const (
	StmtFortran StmtKind = iota // ordinary Fortran line, passed through
	StmtInitiate
	StmtSend
	StmtAccept
	StmtForceSplit
	StmtBarrier
	StmtCritical
	StmtPreschedDo
	StmtSelfschedDo
	StmtParseg
	StmtSharedCommon // SHARED COMMON /name/ list
	StmtLockDecl     // LOCK <names>
	StmtTaskIDDecl   // TASKID <names>
	StmtWindowDecl   // WINDOW <names>
	StmtHandlerDecl  // HANDLER <msgtype>
	StmtSignalDecl   // SIGNAL <msgtype>
)

// Stmt is one parsed statement of a tasktype body.
type Stmt struct {
	Kind StmtKind
	Line int

	// StmtFortran
	Text string

	// StmtInitiate
	Placement string // "CLUSTER n" | "ANY" | "OTHER" | "SAME"
	TaskType  string
	Args      []string

	// StmtSend; MsgType is also the message type of StmtHandlerDecl and
	// StmtSignalDecl.
	Dest    string // "PARENT" | "SELF" | "SENDER" | "USER" | "TCONTR n" | "ALL" | "ALL CLUSTER n" | variable
	MsgType string

	// StmtSharedCommon
	SharedCommon SharedCommonDecl

	// StmtLockDecl, StmtTaskIDDecl, StmtWindowDecl declared names (upper-cased;
	// TASKID and WINDOW entries may carry array extents such as "IDS(4)").
	Names []string

	// StmtAccept
	Accept *AcceptStmt

	// StmtBarrier, StmtCritical, StmtParseg bodies
	Body     []Stmt
	LockVar  string   // StmtCritical
	Segments [][]Stmt // StmtParseg

	// StmtPreschedDo / StmtSelfschedDo
	DoLabel string
	DoVar   string
	DoLo    string
	DoHi    string
	DoStep  string
}

// AcceptStmt is a parsed ACCEPT statement.
type AcceptStmt struct {
	// Total is the <number> OF expression ("" when per-type counts are used).
	Total string
	// Types lists the accepted message types with their counts ("" = use the
	// total, "ALL" = all received).
	Types []AcceptType
	// Delay is the DELAY expression ("" = system default).
	Delay string
	// OnTimeout is the DELAY ... THEN statement sequence.
	OnTimeout []Stmt
}

// AcceptType is one message-type entry of an ACCEPT statement.
type AcceptType struct {
	Name  string
	Count string // "", a number/expression, or "ALL"
}
