package pfc

import (
	"strconv"
	"strings"
)

// Parse parses Pisces Fortran source text into a Program.
func Parse(src string) (*Program, error) {
	p := &parser{lines: splitLines(src)}
	return p.parseProgram()
}

// splitLines splits source text into lines without their line endings.
func splitLines(src string) []string {
	lines := strings.Split(src, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, "\r")
	}
	return lines
}

type parser struct {
	lines []string
	pos   int // index of the next line to consume
}

// peek returns the next line without consuming it; ok is false at EOF.
func (p *parser) peek() (string, int, bool) {
	if p.pos >= len(p.lines) {
		return "", 0, false
	}
	return p.lines[p.pos], p.pos + 1, true
}

func (p *parser) next() (string, int, bool) {
	line, n, ok := p.peek()
	if ok {
		p.pos++
	}
	return line, n, ok
}

// IsComment reports whether the line is a full-line Fortran comment.  It is
// shared with internal/pfi, which skips the same comment forms.
func IsComment(line string) bool {
	if len(line) == 0 {
		return false
	}
	switch line[0] {
	case 'C', 'c', '*':
		return true
	}
	return strings.HasPrefix(strings.TrimSpace(line), "!")
}

// keywords returns the upper-cased, whitespace-normalised form of the
// statement for keyword matching (full-line comments return "").
func keywords(line string) string {
	if IsComment(line) {
		return ""
	}
	return strings.ToUpper(strings.Join(strings.Fields(line), " "))
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for {
		line, lineNo, ok := p.next()
		if !ok {
			return prog, nil
		}
		kw := keywords(line)
		switch {
		case kw == "TASKTYPE" || strings.HasPrefix(kw, "TASKTYPE "):
			tt, err := p.parseTaskType(line, lineNo)
			if err != nil {
				return nil, err
			}
			prog.TaskTypes = append(prog.TaskTypes, tt)
		case kw == "END TASKTYPE":
			return nil, errf(lineNo, "END TASKTYPE without a matching TASKTYPE")
		default:
			prog.Other = append(prog.Other, Line{Number: lineNo, Text: line})
		}
	}
}

// parseTaskType parses a TASKTYPE header and its body up to END TASKTYPE.
func (p *parser) parseTaskType(header string, lineNo int) (*TaskTypeDef, error) {
	name, params, err := parseHeader(header, lineNo)
	if err != nil {
		return nil, err
	}
	tt := &TaskTypeDef{Name: name, Params: params, Line: lineNo}
	body, terminator, err := p.parseBody(tt, []string{"END TASKTYPE"})
	if err != nil {
		return nil, err
	}
	if terminator != "END TASKTYPE" {
		return nil, errf(lineNo, "TASKTYPE %s is never closed by END TASKTYPE", name)
	}
	tt.Body = body
	return tt, nil
}

// parseHeader parses "TASKTYPE <name> [(p1, p2, ...)]".
func parseHeader(line string, lineNo int) (string, []string, error) {
	rest := strings.TrimSpace(line)
	rest = rest[len("TASKTYPE"):]
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", nil, errf(lineNo, "TASKTYPE needs a name")
	}
	name := rest
	var params []string
	if i := strings.Index(rest, "("); i >= 0 {
		if !strings.HasSuffix(rest, ")") {
			return "", nil, errf(lineNo, "unbalanced parameter list in TASKTYPE header")
		}
		name = strings.TrimSpace(rest[:i])
		params = SplitArgs(rest[i+1 : len(rest)-1])
	}
	if name == "" || strings.ContainsAny(name, " \t()") {
		return "", nil, errf(lineNo, "malformed TASKTYPE name %q", name)
	}
	return strings.ToUpper(name), params, nil
}

// parseBody parses statements until one of the terminators is reached.  The
// consumed terminator keyword string is returned.
func (p *parser) parseBody(tt *TaskTypeDef, terminators []string) ([]Stmt, string, error) {
	var out []Stmt
	for {
		line, lineNo, ok := p.next()
		if !ok {
			return out, "", nil
		}
		kw := keywords(line)
		for _, term := range terminators {
			if kw == term || (term == "NEXTSEG" && kw == "NEXTSEG") {
				return out, term, nil
			}
		}
		stmt, err := p.parseStmt(tt, line, lineNo, kw)
		if err != nil {
			return nil, "", err
		}
		out = append(out, stmt)
	}
}

// parseStmt parses one statement (which may itself consume further lines for
// block constructs).
func (p *parser) parseStmt(tt *TaskTypeDef, line string, lineNo int, kw string) (Stmt, error) {
	switch {
	case kw == "":
		return Stmt{Kind: StmtFortran, Line: lineNo, Text: line}, nil

	case strings.HasPrefix(kw, "ON "):
		return parseInitiate(line, lineNo)

	case strings.HasPrefix(kw, "TO "):
		return parseSend(line, lineNo)

	case strings.HasPrefix(kw, "ACCEPT"):
		return p.parseAccept(tt, line, lineNo)

	case kw == "FORCESPLIT":
		tt.UsesForce = true
		return Stmt{Kind: StmtForceSplit, Line: lineNo}, nil

	case kw == "BARRIER":
		body, term, err := p.parseBody(tt, []string{"END BARRIER"})
		if err != nil {
			return Stmt{}, err
		}
		if term != "END BARRIER" {
			return Stmt{}, errf(lineNo, "BARRIER is never closed by END BARRIER")
		}
		return Stmt{Kind: StmtBarrier, Line: lineNo, Body: body}, nil

	case strings.HasPrefix(kw, "CRITICAL"):
		lockVar := strings.TrimSpace(strings.TrimPrefix(kw, "CRITICAL"))
		if lockVar == "" {
			return Stmt{}, errf(lineNo, "CRITICAL needs a lock variable")
		}
		body, term, err := p.parseBody(tt, []string{"END CRITICAL"})
		if err != nil {
			return Stmt{}, err
		}
		if term != "END CRITICAL" {
			return Stmt{}, errf(lineNo, "CRITICAL is never closed by END CRITICAL")
		}
		return Stmt{Kind: StmtCritical, Line: lineNo, LockVar: lockVar, Body: body}, nil

	case kw == "PARSEG":
		return p.parseParseg(tt, lineNo)

	case strings.HasPrefix(kw, "PRESCHED DO") || strings.HasPrefix(kw, "SELFSCHED DO"):
		return parseScheduledDo(line, lineNo, kw)

	case strings.HasPrefix(kw, "SHARED COMMON"):
		decl, err := parseSharedCommon(line, lineNo)
		if err != nil {
			return Stmt{}, err
		}
		tt.SharedCommons = append(tt.SharedCommons, decl)
		return Stmt{Kind: StmtSharedCommon, Line: lineNo, SharedCommon: decl}, nil

	case strings.HasPrefix(kw, "LOCK "):
		names := UpperAll(SplitArgs(strings.TrimSpace(line[strings.Index(strings.ToUpper(line), "LOCK")+4:])))
		tt.Locks = append(tt.Locks, names...)
		return Stmt{Kind: StmtLockDecl, Line: lineNo, Names: names}, nil

	case strings.HasPrefix(kw, "TASKID "):
		names := UpperAll(SplitArgs(strings.TrimSpace(line[strings.Index(strings.ToUpper(line), "TASKID")+6:])))
		tt.TaskIDVars = append(tt.TaskIDVars, names...)
		return Stmt{Kind: StmtTaskIDDecl, Line: lineNo, Names: names}, nil

	case strings.HasPrefix(kw, "WINDOW "):
		names := UpperAll(SplitArgs(strings.TrimSpace(line[strings.Index(strings.ToUpper(line), "WINDOW")+6:])))
		tt.WindowVars = append(tt.WindowVars, names...)
		return Stmt{Kind: StmtWindowDecl, Line: lineNo, Names: names}, nil

	case strings.HasPrefix(kw, "HANDLER "):
		name := strings.ToUpper(strings.TrimSpace(strings.TrimPrefix(kw, "HANDLER ")))
		if name == "" {
			return Stmt{}, errf(lineNo, "HANDLER needs a message type name")
		}
		tt.Handlers = append(tt.Handlers, name)
		return Stmt{Kind: StmtHandlerDecl, Line: lineNo, MsgType: name}, nil

	case strings.HasPrefix(kw, "SIGNAL "):
		name := strings.ToUpper(strings.TrimSpace(strings.TrimPrefix(kw, "SIGNAL ")))
		if name == "" {
			return Stmt{}, errf(lineNo, "SIGNAL needs a message type name")
		}
		tt.Signals = append(tt.Signals, name)
		return Stmt{Kind: StmtSignalDecl, Line: lineNo, MsgType: name}, nil

	case kw == "HANDLER" || kw == "SIGNAL":
		return Stmt{}, errf(lineNo, "%s needs a message type name", kw)

	case kw == "END ACCEPT" || kw == "END BARRIER" || kw == "END CRITICAL" || kw == "ENDSEG" || kw == "NEXTSEG":
		return Stmt{}, errf(lineNo, "%s without a matching opening statement", kw)

	default:
		return Stmt{Kind: StmtFortran, Line: lineNo, Text: line}, nil
	}
}

// parseInitiate parses "ON <cluster> INITIATE <tasktype>(<args>)".
func parseInitiate(line string, lineNo int) (Stmt, error) {
	kw := keywords(line)
	idx := strings.Index(kw, " INITIATE ")
	if idx < 0 {
		if strings.HasSuffix(kw, " INITIATE") {
			return Stmt{}, errf(lineNo, "INITIATE needs a tasktype name")
		}
		// "ON ..." without INITIATE is ordinary Fortran; pass it through.
		return Stmt{Kind: StmtFortran, Line: lineNo, Text: line}, nil
	}
	if idx < 3 {
		return Stmt{}, errf(lineNo, "INITIATE needs a placement between ON and INITIATE")
	}
	placement := strings.TrimSpace(kw[3:idx])
	if err := validPlacement(placement); err != nil {
		return Stmt{}, errf(lineNo, "bad INITIATE placement %q: %v", placement, err)
	}
	callPart := strings.TrimSpace(kw[idx+len(" INITIATE "):])
	name, args, err := parseCall(callPart, lineNo)
	if err != nil {
		return Stmt{}, err
	}
	return Stmt{Kind: StmtInitiate, Line: lineNo, Placement: placement, TaskType: name, Args: args}, nil
}

func validPlacement(p string) error {
	switch {
	case p == "ANY" || p == "OTHER" || p == "SAME":
		return nil
	case strings.HasPrefix(p, "CLUSTER "):
		if strings.TrimSpace(strings.TrimPrefix(p, "CLUSTER ")) == "" {
			return errf(0, "CLUSTER placement needs a number")
		}
		return nil
	default:
		return errf(0, "expected CLUSTER <n>, ANY, OTHER, or SAME")
	}
}

// parseSend parses "TO <dest> SEND <msgtype>(<args>)".
func parseSend(line string, lineNo int) (Stmt, error) {
	kw := keywords(line)
	idx := strings.Index(kw, " SEND ")
	if idx < 0 {
		return Stmt{Kind: StmtFortran, Line: lineNo, Text: line}, nil
	}
	if idx < 3 {
		return Stmt{}, errf(lineNo, "SEND needs a destination between TO and SEND")
	}
	dest := strings.TrimSpace(kw[3:idx])
	if dest == "" {
		return Stmt{}, errf(lineNo, "SEND needs a destination")
	}
	callPart := strings.TrimSpace(kw[idx+len(" SEND "):])
	name, args, err := parseCall(callPart, lineNo)
	if err != nil {
		return Stmt{}, err
	}
	return Stmt{Kind: StmtSend, Line: lineNo, Dest: dest, MsgType: name, Args: args}, nil
}

// parseCall parses "<name>" or "<name>(<args>)".
func parseCall(s string, lineNo int) (string, []string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", nil, errf(lineNo, "missing name")
	}
	i := strings.Index(s, "(")
	if i < 0 {
		if strings.ContainsAny(s, " \t") {
			return "", nil, errf(lineNo, "malformed name %q", s)
		}
		return s, nil, nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", nil, errf(lineNo, "unbalanced argument list in %q", s)
	}
	name := strings.TrimSpace(s[:i])
	if name == "" || strings.ContainsAny(name, " \t") {
		return "", nil, errf(lineNo, "malformed name %q", name)
	}
	return name, SplitArgs(s[i+1 : len(s)-1]), nil
}

// parseScheduledDo parses "PRESCHED DO <label> <var> = <lo>, <hi>[, <step>]"
// and the SELFSCHED form.
func parseScheduledDo(line string, lineNo int, kw string) (Stmt, error) {
	kind := StmtPreschedDo
	rest := strings.TrimPrefix(kw, "PRESCHED DO")
	if strings.HasPrefix(kw, "SELFSCHED DO") {
		kind = StmtSelfschedDo
		rest = strings.TrimPrefix(kw, "SELFSCHED DO")
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return Stmt{}, errf(lineNo, "malformed scheduled DO statement")
	}
	label := fields[0]
	control := strings.TrimSpace(strings.TrimPrefix(rest, label))
	eq := strings.Index(control, "=")
	if eq < 0 {
		return Stmt{}, errf(lineNo, "scheduled DO needs a control variable assignment")
	}
	doVar := strings.TrimSpace(control[:eq])
	bounds := SplitArgs(control[eq+1:])
	if doVar == "" || len(bounds) < 2 || len(bounds) > 3 {
		return Stmt{}, errf(lineNo, "scheduled DO needs <var> = <lo>, <hi>[, <step>]")
	}
	st := Stmt{Kind: kind, Line: lineNo, DoLabel: label, DoVar: doVar, DoLo: bounds[0], DoHi: bounds[1], DoStep: "1"}
	if len(bounds) == 3 {
		st.DoStep = bounds[2]
	}
	return st, nil
}

// parseAccept parses the block form
//
//	ACCEPT <number> OF
//	  <type> [<count>|ALL]
//	  ...
//	DELAY <expr> THEN
//	  <stmts>
//	END ACCEPT
//
// and the single-line form "ACCEPT <number> OF <type1>, <type2>, ...".
func (p *parser) parseAccept(tt *TaskTypeDef, line string, lineNo int) (Stmt, error) {
	kw := keywords(line)
	rest := strings.TrimSpace(strings.TrimPrefix(kw, "ACCEPT"))
	acc := &AcceptStmt{}
	ofIdx := strings.Index(rest, "OF")
	if ofIdx < 0 {
		return Stmt{}, errf(lineNo, "ACCEPT needs an OF clause")
	}
	acc.Total = strings.TrimSpace(rest[:ofIdx])
	inline := strings.TrimSpace(rest[ofIdx+2:])
	if inline != "" {
		// Single-line form.
		for _, ty := range SplitArgs(inline) {
			at, err := parseAcceptType(ty, lineNo)
			if err != nil {
				return Stmt{}, err
			}
			acc.Types = append(acc.Types, at)
		}
		return Stmt{Kind: StmtAccept, Line: lineNo, Accept: acc}, nil
	}

	// Block form: message types until DELAY or END ACCEPT.
	for {
		l, n, ok := p.next()
		if !ok {
			return Stmt{}, errf(lineNo, "ACCEPT is never closed by END ACCEPT")
		}
		k := keywords(l)
		switch {
		case k == "":
			continue // comment or blank line inside the type list
		case k == "END ACCEPT":
			return Stmt{Kind: StmtAccept, Line: lineNo, Accept: acc}, nil
		case strings.HasPrefix(k, "DELAY"):
			delayRest := strings.TrimSpace(strings.TrimPrefix(k, "DELAY"))
			if !strings.HasSuffix(delayRest, "THEN") {
				return Stmt{}, errf(n, "DELAY clause must end with THEN")
			}
			acc.Delay = strings.TrimSpace(strings.TrimSuffix(delayRest, "THEN"))
			body, term, err := p.parseBody(tt, []string{"END ACCEPT"})
			if err != nil {
				return Stmt{}, err
			}
			if term != "END ACCEPT" {
				return Stmt{}, errf(lineNo, "ACCEPT is never closed by END ACCEPT")
			}
			acc.OnTimeout = body
			return Stmt{Kind: StmtAccept, Line: lineNo, Accept: acc}, nil
		default:
			at, err := parseAcceptType(strings.TrimSpace(l), n)
			if err != nil {
				return Stmt{}, err
			}
			acc.Types = append(acc.Types, at)
		}
	}
}

// parseAcceptType parses one message-type entry: "<name>", "<name> <count>",
// or "<name> ALL" / "ALL <name>".
func parseAcceptType(s string, lineNo int) (AcceptType, error) {
	fields := strings.Fields(strings.ToUpper(s))
	switch len(fields) {
	case 1:
		return AcceptType{Name: fields[0]}, nil
	case 2:
		if fields[0] == "ALL" {
			return AcceptType{Name: fields[1], Count: "ALL"}, nil
		}
		return AcceptType{Name: fields[0], Count: fields[1]}, nil
	default:
		return AcceptType{}, errf(lineNo, "malformed ACCEPT message type entry %q", s)
	}
}

// parseParseg parses PARSEG ... NEXTSEG ... ENDSEG.
func (p *parser) parseParseg(tt *TaskTypeDef, lineNo int) (Stmt, error) {
	var segments [][]Stmt
	for {
		body, term, err := p.parseBody(tt, []string{"NEXTSEG", "ENDSEG"})
		if err != nil {
			return Stmt{}, err
		}
		segments = append(segments, body)
		switch term {
		case "ENDSEG":
			return Stmt{Kind: StmtParseg, Line: lineNo, Segments: segments}, nil
		case "NEXTSEG":
			continue
		default:
			return Stmt{}, errf(lineNo, "PARSEG is never closed by ENDSEG")
		}
	}
}

// parseSharedCommon parses "SHARED COMMON /name/ a, b(10), c".
func parseSharedCommon(line string, lineNo int) (SharedCommonDecl, error) {
	kw := keywords(line)
	rest := strings.TrimSpace(strings.TrimPrefix(kw, "SHARED COMMON"))
	if !strings.HasPrefix(rest, "/") {
		return SharedCommonDecl{}, errf(lineNo, "SHARED COMMON needs a /name/ block name")
	}
	end := strings.Index(rest[1:], "/")
	if end < 0 {
		return SharedCommonDecl{}, errf(lineNo, "unterminated SHARED COMMON block name")
	}
	name := strings.TrimSpace(rest[1 : 1+end])
	vars := SplitArgs(rest[end+2:])
	if name == "" {
		return SharedCommonDecl{}, errf(lineNo, "SHARED COMMON needs a block name")
	}
	return SharedCommonDecl{Name: name, Vars: vars, Line: lineNo}, nil
}

func sharedCommonFortran(d SharedCommonDecl) string {
	return "      COMMON /" + d.Name + "/ " + strings.Join(d.Vars, ", ") +
		"\nC PISCES: COMMON /" + d.Name + "/ is allocated in shared memory"
}

// SplitArgs splits a comma-separated list at the top parenthesis level,
// leaving commas inside parentheses and quoted CHARACTER literals alone.  It
// is shared with internal/pfi, which parses the same argument-list syntax.
func SplitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := byte(0)
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr != 0 {
			if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	return append(out, strings.TrimSpace(s[start:]))
}

// UpperAll upper-cases every element of a list of names.  It is shared with
// internal/pfi.
func UpperAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = strings.ToUpper(s)
	}
	return out
}

// declareTriples emits an INTEGER declaration giving each name n words of
// storage (TASKID values occupy 3 integers, WINDOW values 8).  An entry that
// already carries array extents, such as "IDS(4)", becomes a two-dimensional
// block "IDS(3, 4)" — n words per element.
func declareTriples(names []string, n int) string {
	parts := make([]string, len(names))
	for i, name := range names {
		name = strings.ToUpper(strings.TrimSpace(name))
		if j := strings.Index(name, "("); j >= 0 && strings.HasSuffix(name, ")") {
			parts[i] = name[:j] + "(" + strconv.Itoa(n) + ", " + strings.TrimSpace(name[j+1:len(name)-1]) + ")"
			continue
		}
		parts[i] = name + "(" + strconv.Itoa(n) + ")"
	}
	return "      INTEGER " + strings.Join(parts, ", ")
}
