package pfc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// sampleProgram exercises every Pisces Fortran extension the paper describes.
const sampleProgram = `C A small Pisces Fortran program: a host task partitions work over
C worker tasks and a force.
TASKTYPE HOST(N)
      INTEGER N, I
      TASKID WORKERS(4)
      WINDOW W
      SIGNAL DONE
      HANDLER RESULT
      DO 5 I = 1, 4
      ON CLUSTER 2 INITIATE WORKER(I, N)
5     CONTINUE
      ON ANY INITIATE WORKER(5, N)
      TO USER SEND STATUS('STARTED')
      ACCEPT 5 OF
        RESULT
        DONE
      DELAY 10 THEN
        TO USER SEND STATUS('TIMEOUT')
      END ACCEPT
      TO ALL SEND SHUTDOWN
END TASKTYPE

TASKTYPE WORKER(ME, N)
      INTEGER ME, N, I, J
      REAL SUM
      LOCK SUMLK
      SHARED COMMON /RESULTS/ TOTAL, COUNT(100)
      FORCESPLIT
      PRESCHED DO 10 I = 1, N
      SUM = SUM + FLOAT(I)
10    CONTINUE
      SELFSCHED DO 20 J = 1, N, 2
      SUM = SUM + 1.0
20    CONTINUE
      BARRIER
        TOTAL = 0.0
      END BARRIER
      CRITICAL SUMLK
        TOTAL = TOTAL + SUM
      END CRITICAL
      PARSEG
        COUNT(1) = 1
      NEXTSEG
        COUNT(2) = 2
      ENDSEG
      TO PARENT SEND RESULT(SUM)
      TO TCONTR 1 SEND STATISTICS(ME)
END TASKTYPE

      SUBROUTINE RESULT(X)
      REAL X
      RETURN
      END
`

func TestParseSampleProgram(t *testing.T) {
	prog, err := Parse(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.TaskTypeNames(); !reflect.DeepEqual(got, []string{"HOST", "WORKER"}) {
		t.Fatalf("tasktypes = %v", got)
	}

	host := prog.TaskType("host")
	if host == nil {
		t.Fatal("tasktype HOST not found (lookup should be case-insensitive)")
	}
	if !reflect.DeepEqual(host.Params, []string{"N"}) {
		t.Errorf("HOST params = %v", host.Params)
	}
	if !reflect.DeepEqual(host.Signals, []string{"DONE"}) || !reflect.DeepEqual(host.Handlers, []string{"RESULT"}) {
		t.Errorf("HOST declarations: signals %v handlers %v", host.Signals, host.Handlers)
	}
	if !reflect.DeepEqual(host.TaskIDVars, []string{"WORKERS(4)"}) {
		t.Errorf("HOST taskid vars = %v", host.TaskIDVars)
	}
	if len(host.WindowVars) != 1 || host.UsesForce {
		t.Errorf("HOST window vars %v, uses force %v", host.WindowVars, host.UsesForce)
	}

	worker := prog.TaskType("WORKER")
	if worker == nil || !worker.UsesForce {
		t.Fatal("WORKER should use a force")
	}
	if len(worker.SharedCommons) != 1 || worker.SharedCommons[0].Name != "RESULTS" {
		t.Errorf("shared commons = %+v", worker.SharedCommons)
	}
	if !reflect.DeepEqual(worker.Locks, []string{"SUMLK"}) {
		t.Errorf("locks = %v", worker.Locks)
	}

	// Statement kinds present in HOST.
	kinds := map[StmtKind]int{}
	for _, st := range host.Body {
		kinds[st.Kind]++
	}
	if kinds[StmtInitiate] != 2 {
		t.Errorf("HOST initiate statements = %d, want 2", kinds[StmtInitiate])
	}
	if kinds[StmtSend] != 2 { // STATUS + broadcast SHUTDOWN (timeout send is nested)
		t.Errorf("HOST send statements = %d, want 2", kinds[StmtSend])
	}
	if kinds[StmtAccept] != 1 {
		t.Errorf("HOST accept statements = %d, want 1", kinds[StmtAccept])
	}

	// The ACCEPT statement structure.
	var acc *AcceptStmt
	for _, st := range host.Body {
		if st.Kind == StmtAccept {
			acc = st.Accept
		}
	}
	if acc == nil || acc.Total != "5" || len(acc.Types) != 2 || acc.Delay != "10" || len(acc.OnTimeout) != 1 {
		t.Fatalf("accept = %+v", acc)
	}

	// Scheduled DO statements in WORKER.
	var pres, selfs *Stmt
	for i, st := range worker.Body {
		switch st.Kind {
		case StmtPreschedDo:
			pres = &worker.Body[i]
		case StmtSelfschedDo:
			selfs = &worker.Body[i]
		}
	}
	if pres == nil || pres.DoLabel != "10" || pres.DoVar != "I" || pres.DoLo != "1" || pres.DoHi != "N" || pres.DoStep != "1" {
		t.Errorf("presched = %+v", pres)
	}
	if selfs == nil || selfs.DoLabel != "20" || selfs.DoStep != "2" {
		t.Errorf("selfsched = %+v", selfs)
	}

	// The ordinary handler subroutine passes through outside tasktypes.
	foundSub := false
	for _, l := range prog.Other {
		if strings.Contains(l.Text, "SUBROUTINE RESULT") {
			foundSub = true
		}
	}
	if !foundSub {
		t.Error("handler subroutine not preserved outside tasktypes")
	}
}

func TestEmitSampleProgram(t *testing.T) {
	res, err := Preprocess(sampleProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Fortran

	wantFragments := []string{
		"SUBROUTINE PTHOST(N)",
		"SUBROUTINE PTWORKER(ME, N)",
		"CALL PSINIT('WORKER', 'CLUSTER', 2)",
		"CALL PSINIT('WORKER', 'ANY', 0)",
		"CALL PSMSGA(I",
		"CALL PSSEND('STATUS', 'USER', 0)",
		"CALL PSSEND('SHUTDOWN', 'ALL', 0)",
		"CALL PSSEND('RESULT', 'PARENT', 0)",
		"CALL PSSEND('STATISTICS', 'TCONTR', 1)",
		"CALL PSACIN",
		"CALL PSACTY('RESULT', 0)",
		"CALL PSACTY('DONE', 0)",
		"CALL PSACGO(5, 10, PSTIME)",
		"CALL PSFORK",
		"CALL PSBARR(PSPRIM)",
		"CALL PSBARX",
		"CALL PSLOCK(SUMLK)",
		"CALL PSUNLK(SUMLK)",
		"DO 10 I = (1) + (PSMEMB()-1)*(1), N, (1)*PSNMEM()",
		"CALL PSSSIN(1, N, 2)",
		"CALL PSSSNX(J, PSDONE)",
		"IF (.NOT. PSSEG(1, 2)) GOTO",
		// TASKID arrays take 3 integers per element, WINDOW values 8.
		"INTEGER WORKERS(3, 4)",
		"INTEGER W(8)",
		"COMMON /RESULTS/ TOTAL, COUNT(100)",
		"CALL PSHNDL('RESULT', RESULT)",
		"CALL PSSGNL('DONE')",
		"CALL PSEXIT",
		"SUBROUTINE PSRGTT",
		"CALL PSRGST('HOST', PTHOST)",
		"CALL PSRGST('WORKER', PTWORKER)",
		"SUBROUTINE RESULT(X)",
	}
	for _, want := range wantFragments {
		if !strings.Contains(f, want) {
			t.Errorf("generated Fortran missing %q", want)
		}
	}
	// No Pisces keywords may survive in the output as statements.
	for _, forbidden := range []string{"FORCESPLIT", "END TASKTYPE", "PRESCHED", "SELFSCHED", "END ACCEPT", "NEXTSEG"} {
		for _, line := range strings.Split(f, "\n") {
			if IsComment(line) {
				continue
			}
			if strings.Contains(strings.ToUpper(line), forbidden) {
				t.Errorf("untranslated Pisces statement %q in output line %q", forbidden, line)
			}
		}
	}
	// The SELFSCHED loop terminator must have been rewritten into a back jump.
	if !strings.Contains(f, "GOTO 9000") {
		t.Error("SELFSCHED loop closure missing")
	}
}

func TestEmitCustomPrefixAndComments(t *testing.T) {
	res, err := Preprocess(sampleProgram, Options{RuntimePrefix: "PX", KeepComments: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Fortran, "CALL PXFORK") || !strings.Contains(res.Fortran, "CALL PXINIT") {
		t.Error("custom runtime prefix not applied")
	}
	if !strings.Contains(res.Fortran, "C A small Pisces Fortran program") {
		t.Error("KeepComments did not preserve the leading comment")
	}
}

func TestParserErrors(t *testing.T) {
	cases := map[string]string{
		"unclosed tasktype":   "TASKTYPE T\n      X = 1\n",
		"stray end tasktype":  "END TASKTYPE\n",
		"bad header":          "TASKTYPE \n",
		"unbalanced params":   "TASKTYPE T(A, B\nEND TASKTYPE\n",
		"bad placement":       "TASKTYPE T\nON NOWHERE INITIATE W(1)\nEND TASKTYPE\n",
		"initiate no args":    "TASKTYPE T\nON ANY INITIATE \nEND TASKTYPE\n",
		"unbalanced call":     "TASKTYPE T\nON ANY INITIATE W(1\nEND TASKTYPE\n",
		"send no dest":        "TASKTYPE T\nTO  SEND M(1)\nEND TASKTYPE\n",
		"accept without of":   "TASKTYPE T\nACCEPT 3\nEND TASKTYPE\n",
		"unclosed accept":     "TASKTYPE T\nACCEPT 1 OF\n  M\n",
		"delay without then":  "TASKTYPE T\nACCEPT 1 OF\n M\nDELAY 5\nEND ACCEPT\nEND TASKTYPE\n",
		"bad accept entry":    "TASKTYPE T\nACCEPT 1 OF\n M 3 EXTRA\nEND ACCEPT\nEND TASKTYPE\n",
		"critical no lock":    "TASKTYPE T\nCRITICAL\nEND CRITICAL\nEND TASKTYPE\n",
		"stray end critical":  "TASKTYPE T\nEND CRITICAL\nEND TASKTYPE\n",
		"stray nextseg":       "TASKTYPE T\nNEXTSEG\nEND TASKTYPE\n",
		"bad presched":        "TASKTYPE T\nPRESCHED DO 10\nEND TASKTYPE\n",
		"presched no equals":  "TASKTYPE T\nPRESCHED DO 10 I 1, 5\nEND TASKTYPE\n",
		"presched bad bounds": "TASKTYPE T\nPRESCHED DO 10 I = 1\nEND TASKTYPE\n",
		"shared common name":  "TASKTYPE T\nSHARED COMMON X, Y\nEND TASKTYPE\n",
		"shared common slash": "TASKTYPE T\nSHARED COMMON /BLK X, Y\nEND TASKTYPE\n",
		"handler no name":     "TASKTYPE T\nHANDLER \nEND TASKTYPE\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected a parse error", name)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("%s: error %v is not a *pfc.Error", name, err)
		}
	}
}

func TestSelfschedWithoutTerminatorIsRejected(t *testing.T) {
	src := "TASKTYPE T\nFORCESPLIT\nSELFSCHED DO 30 I = 1, 10\n      X = I\nEND TASKTYPE\n"
	if _, err := Preprocess(src, Options{}); err == nil {
		t.Fatal("SELFSCHED DO without its terminating label should be rejected at emit time")
	}
}

func TestOrdinaryFortranPassesThroughUnchanged(t *testing.T) {
	src := `TASKTYPE PLAIN
      INTEGER I, J
      J = 0
      DO 10 I = 1, 10
      J = J + I
10    CONTINUE
      IF (J .GT. 50) THEN
        J = 50
      END IF
END TASKTYPE
`
	res, err := Preprocess(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"J = J + I", "10    CONTINUE", "IF (J .GT. 50) THEN", "END IF"} {
		if !strings.Contains(res.Fortran, want) {
			t.Errorf("pass-through line %q missing", want)
		}
	}
}

func TestSplitArgs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"A", []string{"A"}},
		{"A, B, C", []string{"A", "B", "C"}},
		{"F(X, Y), B", []string{"F(X, Y)", "B"}},
		{"A(1,2), B(I, J(3))", []string{"A(1,2)", "B(I, J(3))"}},
		// Commas inside CHARACTER literals do not split.
		{"'A,B', C", []string{"'A,B'", "C"}},
		{"X, 'IT''S, OK', Y", []string{"X", "'IT''S, OK'", "Y"}},
	}
	for _, c := range cases {
		got := SplitArgs(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitArgs(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStatementLabel(t *testing.T) {
	cases := map[string]string{
		"10    CONTINUE":    "10",
		"      X = 1":       "",
		"5     Y(2) = 3":    "5",
		"100":               "",
		"  20  Z = 1":       "20",
		"C a comment line ": "",
	}
	for line, want := range cases {
		if got := statementLabel(line); got != want {
			t.Errorf("statementLabel(%q) = %q, want %q", line, got, want)
		}
	}
}

// Property: preprocessing is deterministic and ordinary Fortran assignment
// lines always survive verbatim.
func TestQuickPassThroughStability(t *testing.T) {
	f := func(a, b uint8) bool {
		line := "      X" + strings.Repeat("X", int(a%4)) + " = " + strings.Repeat("1+", int(b%4)) + "1"
		src := "TASKTYPE T\n" + line + "\nEND TASKTYPE\n"
		r1, err1 := Preprocess(src, Options{})
		r2, err2 := Preprocess(src, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Fortran == r2.Fortran && strings.Contains(r1.Fortran, line)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPreprocess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Preprocess(sampleProgram, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
