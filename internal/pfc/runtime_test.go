package pfc

import (
	"regexp"
	"strings"
	"testing"
)

func TestRuntimeEntriesCoverEmittedCalls(t *testing.T) {
	// Every run-time call the emitter can generate must be declared in the
	// runtime interface table.
	res, err := Preprocess(sampleProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	declared := map[string]bool{}
	for _, e := range RuntimeEntries() {
		declared["PS"+e.Name] = true
	}
	callRe := regexp.MustCompile(`\bCALL (PS[A-Z0-9]+)`)
	funcRe := regexp.MustCompile(`\b(PS[A-Z0-9]+)\(`)
	for _, m := range callRe.FindAllStringSubmatch(res.Fortran, -1) {
		if !declared[m[1]] {
			t.Errorf("emitted CALL %s has no runtime interface entry", m[1])
		}
	}
	for _, m := range funcRe.FindAllStringSubmatch(res.Fortran, -1) {
		name := m[1]
		if strings.HasPrefix(name, "PSRGTT") { // the generated registration subroutine itself
			continue
		}
		if !declared[name] && name != "PSPRIM" && name != "PSTIME" && name != "PSDONE" {
			t.Errorf("emitted reference %s has no runtime interface entry", name)
		}
	}
}

func TestRuntimeEntriesWellFormed(t *testing.T) {
	entries := RuntimeEntries()
	if len(entries) < 15 {
		t.Fatalf("suspiciously few runtime entries: %d", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.Name == "" || e.Doc == "" {
			t.Errorf("entry %+v missing name or doc", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate entry %s", e.Name)
		}
		seen[e.Name] = true
		switch e.Kind {
		case "subroutine", "integer function", "logical function":
		default:
			t.Errorf("entry %s has unknown kind %q", e.Name, e.Kind)
		}
	}
	for _, required := range []string{"INIT", "SEND", "ACGO", "FORK", "BARR", "LOCK", "UNLK", "SSNX", "MEMB", "NMEM", "SEG", "RGST", "EXIT"} {
		if !seen[required] {
			t.Errorf("runtime interface missing %s", required)
		}
	}
}

func TestRuntimeStubs(t *testing.T) {
	stubs := RuntimeStubs(Options{})
	for _, want := range []string{
		"SUBROUTINE PSINIT(TTYPE, PLACE, CLUSTR)",
		"SUBROUTINE PSSEND(MTYPE, DEST, DESTNO)",
		"INTEGER FUNCTION PSMEMB()",
		"LOGICAL FUNCTION PSSEG(ISEG, NSEG)",
		"SUBROUTINE PSFORK",
		"LOGICAL TIMOUT",
	} {
		if !strings.Contains(stubs, want) {
			t.Errorf("stubs missing %q", want)
		}
	}
	// Every declared entry must have a stub, and END must balance the
	// declarations.
	for _, e := range RuntimeEntries() {
		if !strings.Contains(stubs, "PS"+e.Name) {
			t.Errorf("no stub for PS%s", e.Name)
		}
	}
	if strings.Count(stubs, "\n      END\n") != len(RuntimeEntries()) {
		t.Errorf("stub END count %d != %d entries", strings.Count(stubs, "\n      END\n"), len(RuntimeEntries()))
	}
	// Custom prefixes flow through.
	if !strings.Contains(RuntimeStubs(Options{RuntimePrefix: "PX"}), "SUBROUTINE PXINIT") {
		t.Error("custom prefix not applied to stubs")
	}
}
