// Package rect provides the geometry of PISCES 2 "windows" (paper, Section 8).
// A window is a generalized pointer to a rectangular subregion of an array
// owned by another task.  This package defines the rectangular-subregion
// descriptor itself — bounds checking, shrinking, intersection, splitting
// into bands for parallel data partitioning, and row-major linearisation —
// independent of the tasking machinery, so the arithmetic can be
// property-tested in isolation.
//
// Coordinates follow the Fortran convention used by Pisces Fortran: array
// dimensions are 1-based and bounds are inclusive.
package rect

import "fmt"

// Rect describes a rectangular subregion of a 2-D array with inclusive,
// 1-based bounds.  A 1-D array is represented as a single row (Row1 = Row2 = 1).
type Rect struct {
	Row1, Row2 int // first and last row, inclusive
	Col1, Col2 int // first and last column, inclusive
}

// New returns the rectangle [r1..r2] x [c1..c2].  It does not validate; call
// Valid or use Shrink for checked derivation.
func New(r1, r2, c1, c2 int) Rect { return Rect{Row1: r1, Row2: r2, Col1: c1, Col2: c2} }

// Whole returns the rectangle covering an entire rows x cols array.
func Whole(rows, cols int) Rect { return Rect{Row1: 1, Row2: rows, Col1: 1, Col2: cols} }

// Valid reports whether the rectangle is non-empty with positive bounds.
func (r Rect) Valid() bool {
	return r.Row1 >= 1 && r.Col1 >= 1 && r.Row2 >= r.Row1 && r.Col2 >= r.Col1
}

// Rows returns the number of rows covered.
func (r Rect) Rows() int {
	if !r.Valid() {
		return 0
	}
	return r.Row2 - r.Row1 + 1
}

// Cols returns the number of columns covered.
func (r Rect) Cols() int {
	if !r.Valid() {
		return 0
	}
	return r.Col2 - r.Col1 + 1
}

// Size returns the number of elements covered.
func (r Rect) Size() int { return r.Rows() * r.Cols() }

// String renders the rectangle in the form "(r1:r2, c1:c2)".
func (r Rect) String() string {
	return fmt.Sprintf("(%d:%d, %d:%d)", r.Row1, r.Row2, r.Col1, r.Col2)
}

// Contains reports whether other lies entirely inside r.
func (r Rect) Contains(other Rect) bool {
	return r.Valid() && other.Valid() &&
		other.Row1 >= r.Row1 && other.Row2 <= r.Row2 &&
		other.Col1 >= r.Col1 && other.Col2 <= r.Col2
}

// ContainsPoint reports whether element (row, col) lies inside r.
func (r Rect) ContainsPoint(row, col int) bool {
	return r.Valid() && row >= r.Row1 && row <= r.Row2 && col >= r.Col1 && col <= r.Col2
}

// Intersect returns the overlap of r and other and whether it is non-empty.
// The file controller uses this to "manage any parallel read/write requests
// for overlapping sections of an array" (Section 8).
func (r Rect) Intersect(other Rect) (Rect, bool) {
	out := Rect{
		Row1: max(r.Row1, other.Row1),
		Row2: min(r.Row2, other.Row2),
		Col1: max(r.Col1, other.Col1),
		Col2: min(r.Col2, other.Col2),
	}
	return out, out.Valid()
}

// Overlaps reports whether r and other share at least one element.
func (r Rect) Overlaps(other Rect) bool {
	_, ok := r.Intersect(other)
	return ok
}

// Shrink derives a sub-window: the result must lie entirely within r
// ("Another task may also 'shrink' the window to point to a smaller
// subarray", Section 8).  Growing a window is an error.
func (r Rect) Shrink(to Rect) (Rect, error) {
	if !to.Valid() {
		return Rect{}, fmt.Errorf("rect: shrink target %v is empty or invalid", to)
	}
	if !r.Contains(to) {
		return Rect{}, fmt.Errorf("rect: %v does not contain shrink target %v", r, to)
	}
	return to, nil
}

// RowBands splits r into n horizontal bands of near-equal height, in order.
// Bands beyond the number of rows are empty and omitted, so the number of
// returned bands is min(n, Rows).  This is the top-level partitioning pattern
// of Section 8: "The owner of the data may do the top-level partitioning by
// creating windows on appropriate partitions."
func (r Rect) RowBands(n int) ([]Rect, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rect: band count must be positive, got %d", n)
	}
	if !r.Valid() {
		return nil, fmt.Errorf("rect: cannot split invalid rectangle %v", r)
	}
	rows := r.Rows()
	if n > rows {
		n = rows
	}
	base := rows / n
	rem := rows % n
	var out []Rect
	row := r.Row1
	for i := 0; i < n; i++ {
		h := base
		if i < rem {
			h++
		}
		out = append(out, Rect{Row1: row, Row2: row + h - 1, Col1: r.Col1, Col2: r.Col2})
		row += h
	}
	return out, nil
}

// ColBands splits r into n vertical bands of near-equal width.
func (r Rect) ColBands(n int) ([]Rect, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rect: band count must be positive, got %d", n)
	}
	if !r.Valid() {
		return nil, fmt.Errorf("rect: cannot split invalid rectangle %v", r)
	}
	cols := r.Cols()
	if n > cols {
		n = cols
	}
	base := cols / n
	rem := cols % n
	var out []Rect
	col := r.Col1
	for i := 0; i < n; i++ {
		w := base
		if i < rem {
			w++
		}
		out = append(out, Rect{Row1: r.Row1, Row2: r.Row2, Col1: col, Col2: col + w - 1})
		col += w
	}
	return out, nil
}

// Tile splits r into a grid of pr x pc tiles (pr row bands, each split into
// pc column bands), in row-major tile order.
func (r Rect) Tile(pr, pc int) ([]Rect, error) {
	bands, err := r.RowBands(pr)
	if err != nil {
		return nil, err
	}
	var out []Rect
	for _, band := range bands {
		cols, err := band.ColBands(pc)
		if err != nil {
			return nil, err
		}
		out = append(out, cols...)
	}
	return out, nil
}

// Offsets returns the row-major linear offsets (0-based) into a rows x cols
// array of every element of r, in row-major order.  It is used to copy the
// data visible in a window into and out of the owner's array.
func (r Rect) Offsets(rows, cols int) ([]int, error) {
	if !r.Valid() {
		return nil, fmt.Errorf("rect: invalid rectangle %v", r)
	}
	if r.Row2 > rows || r.Col2 > cols {
		return nil, fmt.Errorf("rect: %v exceeds array bounds %dx%d", r, rows, cols)
	}
	out := make([]int, 0, r.Size())
	for row := r.Row1; row <= r.Row2; row++ {
		base := (row-1)*cols + (r.Col1 - 1)
		for c := 0; c < r.Cols(); c++ {
			out = append(out, base+c)
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
