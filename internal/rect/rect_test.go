package rect

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicGeometry(t *testing.T) {
	r := New(2, 5, 3, 10)
	if !r.Valid() {
		t.Fatal("rectangle should be valid")
	}
	if r.Rows() != 4 || r.Cols() != 8 || r.Size() != 32 {
		t.Fatalf("rows/cols/size = %d/%d/%d", r.Rows(), r.Cols(), r.Size())
	}
	if r.String() != "(2:5, 3:10)" {
		t.Fatalf("String = %q", r.String())
	}
	w := Whole(100, 50)
	if w.Rows() != 100 || w.Cols() != 50 {
		t.Fatalf("Whole = %v", w)
	}
	if !w.Contains(r) || r.Contains(w) {
		t.Fatal("containment wrong")
	}
	if !r.ContainsPoint(2, 3) || !r.ContainsPoint(5, 10) || r.ContainsPoint(6, 3) || r.ContainsPoint(2, 11) {
		t.Fatal("ContainsPoint wrong")
	}
}

func TestInvalidRects(t *testing.T) {
	bad := []Rect{
		New(0, 5, 1, 5),   // zero-based row
		New(1, 5, 0, 5),   // zero-based col
		New(5, 4, 1, 5),   // rows crossed
		New(1, 5, 9, 8),   // cols crossed
		New(-1, -1, 1, 1), // negative
	}
	for _, r := range bad {
		if r.Valid() {
			t.Errorf("%v should be invalid", r)
		}
		if r.Rows() != 0 || r.Cols() != 0 || r.Size() != 0 {
			t.Errorf("%v: invalid rect should report zero extent", r)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := New(1, 10, 1, 10)
	b := New(5, 15, 8, 20)
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected overlap")
	}
	if got != New(5, 10, 8, 10) {
		t.Fatalf("intersection = %v", got)
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("Overlaps should be symmetric and true")
	}
	c := New(11, 20, 1, 10)
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint rectangles reported overlapping")
	}
	if a.Overlaps(c) {
		t.Fatal("Overlaps wrong for disjoint rects")
	}
}

func TestShrink(t *testing.T) {
	w := New(1, 100, 1, 100)
	s, err := w.Shrink(New(10, 20, 30, 40))
	if err != nil {
		t.Fatal(err)
	}
	if s != New(10, 20, 30, 40) {
		t.Fatalf("shrink = %v", s)
	}
	if _, err := w.Shrink(New(50, 150, 1, 10)); err == nil {
		t.Fatal("shrink beyond owner rectangle accepted")
	}
	if _, err := w.Shrink(New(20, 10, 1, 10)); err == nil {
		t.Fatal("empty shrink target accepted")
	}
	// Shrinking to the same region is allowed (not a grow).
	if _, err := w.Shrink(w); err != nil {
		t.Fatalf("shrink to self rejected: %v", err)
	}
}

func TestRowBands(t *testing.T) {
	r := Whole(10, 4)
	bands, err := r.RowBands(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []Rect{New(1, 4, 1, 4), New(5, 7, 1, 4), New(8, 10, 1, 4)}
	if !reflect.DeepEqual(bands, want) {
		t.Fatalf("bands = %v, want %v", bands, want)
	}
	// More bands than rows: one band per row.
	bands, err = Whole(2, 5).RowBands(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 2 {
		t.Fatalf("bands = %v", bands)
	}
	if _, err := r.RowBands(0); err == nil {
		t.Fatal("zero bands accepted")
	}
	if _, err := (Rect{}).RowBands(2); err == nil {
		t.Fatal("invalid rect accepted")
	}
}

func TestColBandsAndTile(t *testing.T) {
	r := Whole(6, 9)
	cols, err := r.ColBands(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cols, []Rect{New(1, 6, 1, 5), New(1, 6, 6, 9)}) {
		t.Fatalf("col bands = %v", cols)
	}
	tiles, err := r.Tile(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 6 {
		t.Fatalf("tile count = %d", len(tiles))
	}
	total := 0
	for _, tl := range tiles {
		total += tl.Size()
	}
	if total != r.Size() {
		t.Fatalf("tiles cover %d elements, want %d", total, r.Size())
	}
	if _, err := r.Tile(0, 2); err == nil {
		t.Fatal("bad tile split accepted")
	}
	if _, err := r.Tile(2, 0); err == nil {
		t.Fatal("bad tile split accepted")
	}
}

func TestOffsets(t *testing.T) {
	// 3x4 array, window on rows 2..3, cols 2..3.
	r := New(2, 3, 2, 3)
	offs, err := r.Offsets(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{5, 6, 9, 10}
	if !reflect.DeepEqual(offs, want) {
		t.Fatalf("offsets = %v, want %v", offs, want)
	}
	if _, err := r.Offsets(2, 4); err == nil {
		t.Fatal("window exceeding array accepted")
	}
	if _, err := (Rect{}).Offsets(3, 4); err == nil {
		t.Fatal("invalid window accepted")
	}
}

// Property: RowBands partitions the rectangle — bands are valid, disjoint,
// contained in the original, ordered, and their sizes sum to the original.
func TestQuickRowBandsPartition(t *testing.T) {
	f := func(rows, cols uint8, nRaw uint8) bool {
		r := Whole(int(rows%60)+1, int(cols%60)+1)
		n := int(nRaw%12) + 1
		bands, err := r.RowBands(n)
		if err != nil {
			return false
		}
		total := 0
		prevRow := r.Row1 - 1
		for _, b := range bands {
			if !b.Valid() || !r.Contains(b) {
				return false
			}
			if b.Row1 != prevRow+1 {
				return false
			}
			if b.Col1 != r.Col1 || b.Col2 != r.Col2 {
				return false
			}
			prevRow = b.Row2
			total += b.Size()
		}
		return prevRow == r.Row2 && total == r.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: shrink never grows a window and composes — shrinking twice stays
// within the original.
func TestQuickShrinkMonotone(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h uint8) bool {
		outer := Whole(int(a%50)+10, int(b%50)+10)
		t1 := New(int(c%10)+1, int(c%10)+1+int(d%5), int(e%10)+1, int(e%10)+1+int(f2%5))
		s1, err := outer.Shrink(t1)
		if err != nil {
			return true // rejected shrinks are fine; we only check accepted ones
		}
		if !outer.Contains(s1) {
			return false
		}
		t2 := New(s1.Row1, s1.Row1+int(g%3), s1.Col1, s1.Col1+int(h%3))
		s2, err := s1.Shrink(t2)
		if err != nil {
			return true
		}
		return s1.Contains(s2) && outer.Contains(s2) && s2.Size() <= s1.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Offsets are strictly increasing, within array bounds, and count
// matches Size.
func TestQuickOffsets(t *testing.T) {
	f := func(rows, cols, r1, c1, dr, dc uint8) bool {
		R, C := int(rows%40)+1, int(cols%40)+1
		row1 := int(r1)%R + 1
		col1 := int(c1)%C + 1
		row2 := row1 + int(dr)%(R-row1+1)
		col2 := col1 + int(dc)%(C-col1+1)
		w := New(row1, row2, col1, col2)
		offs, err := w.Offsets(R, C)
		if err != nil {
			return false
		}
		if len(offs) != w.Size() {
			return false
		}
		prev := -1
		for _, o := range offs {
			if o <= prev || o < 0 || o >= R*C {
				return false
			}
			prev = o
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTile(b *testing.B) {
	r := Whole(1024, 1024)
	for i := 0; i < b.N; i++ {
		if _, err := r.Tile(4, 4); err != nil {
			b.Fatal(err)
		}
	}
}
