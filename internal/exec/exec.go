// Package exec implements the PISCES 2 execution environment (paper, Section
// 11): the menu-driven program that controls a run once the loadfile has been
// downloaded to the MMOS PEs.  The original displayed a menu with the options
//
//	0 TERMINATE THE RUN          5 DISPLAY RUNNING TASKS
//	1 INITIATE A TASK            6 DISPLAY MESSAGE QUEUE
//	2 KILL A TASK                7 DUMP SYSTEM STATE
//	3 SEND A MESSAGE             8 DISPLAY PE LOADING
//	4 DELETE MESSAGES            9 CHANGE TRACE OPTIONS
//
// This package provides the same ten operations as a command interpreter over
// a running core.VM.  Commands may be given either by menu number or by name,
// so the environment is usable both interactively (cmd/pisces) and from
// scripts and tests.
package exec

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

// Environment is one execution-environment session bound to a VM.
type Environment struct {
	vm  *core.VM
	out io.Writer
}

// New creates an execution environment controlling vm and writing its
// displays to out.
func New(vm *core.VM, out io.Writer) *Environment {
	return &Environment{vm: vm, out: out}
}

// VM returns the virtual machine under control.
func (e *Environment) VM() *core.VM { return e.vm }

// Menu returns the option menu exactly as the Section 11 implementation
// displayed it.
func Menu() string {
	return `PISCES 2 EXECUTION ENVIRONMENT
 0  TERMINATE THE RUN
 1  INITIATE A TASK        (initiate <tasktype> [cluster <n>|any|other|same] [args...])
 2  KILL A TASK            (kill <taskid>)
 3  SEND A MESSAGE         (send <taskid> <msgtype> [args...])
 4  DELETE MESSAGES        (delete <taskid> [msgtype])
 5  DISPLAY RUNNING TASKS  (tasks)
 6  DISPLAY MESSAGE QUEUE  (queue <taskid>)
 7  DUMP SYSTEM STATE      (dump)
 8  DISPLAY PE LOADING     (loading)
 9  CHANGE TRACE OPTIONS   (trace <event>|all on|off, trace show)
    help, figure1
`
}

// ErrTerminated is returned by Execute for the TERMINATE THE RUN command so
// interactive loops know to stop.
var ErrTerminated = fmt.Errorf("exec: run terminated")

// Execute runs one command line and writes its output.  Menu numbers 0-9 and
// the named forms shown by Menu are both understood.
func (e *Environment) Execute(line string) error {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return nil
	}
	cmd := strings.ToLower(fields[0])
	args := fields[1:]

	// Menu numbers map onto named commands.
	if n, err := strconv.Atoi(cmd); err == nil {
		names := map[int]string{
			0: "terminate", 1: "initiate", 2: "kill", 3: "send", 4: "delete",
			5: "tasks", 6: "queue", 7: "dump", 8: "loading", 9: "trace",
		}
		name, ok := names[n]
		if !ok {
			return fmt.Errorf("exec: no menu option %d", n)
		}
		cmd = name
	}

	switch cmd {
	case "help", "menu":
		fmt.Fprint(e.out, Menu())
		return nil
	case "terminate", "quit", "exit":
		e.vm.Shutdown()
		fmt.Fprintln(e.out, "run terminated")
		return ErrTerminated
	case "initiate":
		return e.initiate(args)
	case "kill":
		return e.kill(args)
	case "send":
		return e.send(args)
	case "delete":
		return e.deleteMessages(args)
	case "tasks":
		return e.displayTasks()
	case "queue":
		return e.displayQueue(args)
	case "dump":
		e.vm.DumpState(e.out)
		return nil
	case "loading":
		return e.displayLoading()
	case "trace":
		return e.traceOptions(args)
	case "figure1":
		e.vm.RenderFigure1(e.out)
		return nil
	default:
		return fmt.Errorf("exec: unknown command %q (try help)", cmd)
	}
}

// Repl reads command lines from in until EOF or TERMINATE THE RUN, echoing
// errors to the output; it is the interactive loop of cmd/pisces.
func (e *Environment) Repl(in io.Reader, prompt bool) error {
	sc := bufio.NewScanner(in)
	for {
		if prompt {
			fmt.Fprint(e.out, "pisces> ")
		}
		if !sc.Scan() {
			return sc.Err()
		}
		err := e.Execute(sc.Text())
		if err == ErrTerminated {
			return nil
		}
		if err != nil {
			fmt.Fprintf(e.out, "error: %v\n", err)
		}
	}
}

// initiate: INITIATE A TASK.
func (e *Environment) initiate(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("exec: usage: initiate <tasktype> [cluster <n>|any|other|same] [args...]")
	}
	tasktype := args[0]
	rest := args[1:]
	placement := core.Any()
	if len(rest) > 0 {
		switch strings.ToLower(rest[0]) {
		case "cluster":
			if len(rest) < 2 {
				return fmt.Errorf("exec: cluster placement needs a number")
			}
			n, err := strconv.Atoi(rest[1])
			if err != nil {
				return fmt.Errorf("exec: bad cluster number %q", rest[1])
			}
			placement = core.OnCluster(n)
			rest = rest[2:]
		case "any":
			placement = core.Any()
			rest = rest[1:]
		case "other":
			placement = core.Other()
			rest = rest[1:]
		case "same":
			placement = core.Same()
			rest = rest[1:]
		}
	}
	values, err := parseValues(rest)
	if err != nil {
		return err
	}
	id, err := e.vm.Initiate(tasktype, placement, values...)
	if err != nil {
		return err
	}
	fmt.Fprintf(e.out, "initiated %s as task %s\n", tasktype, id)
	return nil
}

// kill: KILL A TASK.
func (e *Environment) kill(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("exec: usage: kill <taskid>")
	}
	id, err := core.ParseTaskID(args[0])
	if err != nil {
		return err
	}
	if err := e.vm.Kill(id); err != nil {
		return err
	}
	fmt.Fprintf(e.out, "killed task %s\n", id)
	return nil
}

// send: SEND A MESSAGE.
func (e *Environment) send(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("exec: usage: send <taskid> <msgtype> [args...]")
	}
	id, err := core.ParseTaskID(args[0])
	if err != nil {
		return err
	}
	values, err := parseValues(args[2:])
	if err != nil {
		return err
	}
	if err := e.vm.SendFromUser(id, args[1], values...); err != nil {
		return err
	}
	fmt.Fprintf(e.out, "sent %s to %s\n", args[1], id)
	return nil
}

// deleteMessages: DELETE MESSAGES.
func (e *Environment) deleteMessages(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("exec: usage: delete <taskid> [msgtype]")
	}
	id, err := core.ParseTaskID(args[0])
	if err != nil {
		return err
	}
	msgType := ""
	if len(args) == 2 {
		msgType = args[1]
	}
	n, err := e.vm.DeleteMessages(id, msgType)
	if err != nil {
		return err
	}
	fmt.Fprintf(e.out, "deleted %d message(s) from the in-queue of %s\n", n, id)
	return nil
}

// displayTasks: DISPLAY RUNNING TASKS.
func (e *Environment) displayTasks() error {
	tasks := e.vm.RunningTasks()
	fmt.Fprintf(e.out, "%-12s %-28s %-8s %-4s %-4s %-9s %s\n",
		"TASKID", "TASKTYPE", "CLUSTER", "SLOT", "PE", "STATE", "QUEUED")
	for _, ti := range tasks {
		fmt.Fprintf(e.out, "%-12s %-28s %-8d %-4d %-4d %-9s %d\n",
			ti.ID, ti.TaskType, ti.Cluster, ti.Slot, ti.PE, ti.State, ti.QueueLen)
	}
	fmt.Fprintf(e.out, "%d task(s)\n", len(tasks))
	return nil
}

// displayQueue: DISPLAY MESSAGE QUEUE.
func (e *Environment) displayQueue(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("exec: usage: queue <taskid>")
	}
	id, err := core.ParseTaskID(args[0])
	if err != nil {
		return err
	}
	msgs, err := e.vm.MessageQueue(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(e.out, "in-queue of %s: %d message(s)\n", id, len(msgs))
	for i, m := range msgs {
		fmt.Fprintf(e.out, "  %2d  %-20s from %-12s args=%d bytes=%d\n", i, m.Type, m.Sender, m.Args, m.Bytes)
	}
	return nil
}

// displayLoading: DISPLAY PE LOADING.
func (e *Environment) displayLoading() error {
	fmt.Fprintf(e.out, "%-4s %-6s %-7s %-12s %-18s %s\n", "PE", "KIND", "PROCS", "TICKS", "LOCAL USED", "MAX-MULTIPROG")
	for _, pl := range e.vm.PELoading() {
		kind := "mmos"
		if pl.Unix {
			kind = "unix"
		}
		fmt.Fprintf(e.out, "%-4d %-6s %-7d %-12d %-18s %d\n",
			pl.PE, kind, pl.BoundProcs, pl.Ticks,
			fmt.Sprintf("%d/%d", pl.LocalUsed, pl.LocalTotal), pl.MaxMultiprog)
	}
	return nil
}

// traceOptions: CHANGE TRACE OPTIONS.
func (e *Environment) traceOptions(args []string) error {
	rec := e.vm.Tracer()
	if len(args) == 0 || args[0] == "show" {
		fmt.Fprint(e.out, rec.Settings())
		return nil
	}
	if len(args) != 2 {
		return fmt.Errorf("exec: usage: trace <event>|all on|off, or trace show")
	}
	on := false
	switch strings.ToLower(args[1]) {
	case "on":
		on = true
	case "off":
		on = false
	default:
		return fmt.Errorf("exec: trace setting must be on or off, got %q", args[1])
	}
	if strings.EqualFold(args[0], "all") {
		rec.EnableAll(on)
		fmt.Fprintf(e.out, "all trace events %s\n", onOff(on))
		return nil
	}
	kind, err := trace.ParseKind(strings.ToUpper(args[0]))
	if err != nil {
		return err
	}
	rec.EnableKind(kind, on)
	fmt.Fprintf(e.out, "%s tracing %s\n", kind, onOff(on))
	return nil
}

func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

// parseValues converts command-line argument tokens into message/task
// argument values: integers, reals, true/false, quoted or bare strings.
func parseValues(tokens []string) ([]core.Value, error) {
	var out []core.Value
	for _, tok := range tokens {
		switch {
		case tok == "true" || tok == "false":
			out = append(out, core.Bool(tok == "true"))
		case looksLikeInt(tok):
			v, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("exec: bad integer %q", tok)
			}
			out = append(out, core.Int(v))
		case looksLikeReal(tok):
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("exec: bad real %q", tok)
			}
			out = append(out, core.Real(v))
		default:
			out = append(out, core.Str(strings.Trim(tok, `"'`)))
		}
	}
	return out, nil
}

func looksLikeInt(s string) bool {
	if s == "" {
		return false
	}
	start := 0
	if s[0] == '-' || s[0] == '+' {
		if len(s) == 1 {
			return false
		}
		start = 1
	}
	for _, c := range s[start:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func looksLikeReal(s string) bool {
	if !strings.ContainsAny(s, ".eE") {
		return false
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

// TaskTypesSummary lists the registered tasktypes, for the configuration
// environment's pre-run display.
func (e *Environment) TaskTypesSummary() string {
	names := e.vm.TaskTypes()
	sort.Strings(names)
	return "registered tasktypes: " + strings.Join(names, ", ")
}
