package exec

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
)

// syncBuffer is a goroutine-safe buffer for capturing output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newEnv boots a VM with a waiting tasktype registered and an execution
// environment over it.
func newEnv(t *testing.T) (*Environment, *syncBuffer) {
	t.Helper()
	out := &syncBuffer{}
	vm, err := core.NewVM(config.Simple(2, 2), core.Options{UserOutput: out, AcceptTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(vm.Shutdown)
	vm.Register("waiter", func(task *core.Task) {
		_, _ = task.Accept(core.AcceptSpec{
			Total: 1,
			Types: []core.TypeCount{{Type: "stop"}},
			Delay: core.Forever,
		})
	})
	vm.Register("echo", func(task *core.Task) {
		task.Printf("echo ran with %d args\n", len(task.Args()))
	})
	return New(vm, out), out
}

func TestMenuAndHelp(t *testing.T) {
	env, out := newEnv(t)
	if err := env.Execute("help"); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"TERMINATE THE RUN", "INITIATE A TASK", "KILL A TASK", "SEND A MESSAGE",
		"DELETE MESSAGES", "DISPLAY RUNNING TASKS", "DISPLAY MESSAGE QUEUE",
		"DUMP SYSTEM STATE", "DISPLAY PE LOADING", "CHANGE TRACE OPTIONS",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("menu missing %q", want)
		}
	}
}

func TestInitiateKillAndDisplays(t *testing.T) {
	env, out := newEnv(t)

	// Menu option 1: INITIATE A TASK.
	if err := env.Execute("initiate waiter cluster 2"); err != nil {
		t.Fatal(err)
	}
	line := lastLine(out.String())
	if !strings.Contains(line, "initiated waiter as task 2.") {
		t.Fatalf("initiate output %q", line)
	}
	id := strings.Fields(line)[len(strings.Fields(line))-1]

	// Menu option 5: DISPLAY RUNNING TASKS.
	if err := env.Execute("5"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "waiter") {
		t.Fatal("running-task display missing the initiated task")
	}

	// Menu option 3 / 6: send a message, display the queue.
	if err := env.Execute("send " + id + " note 42 3.5 hello"); err != nil {
		t.Fatal(err)
	}
	if err := env.Execute("queue " + id); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "note") {
		t.Fatal("queue display missing the queued message")
	}

	// Menu option 4: DELETE MESSAGES.
	if err := env.Execute("delete " + id + " note"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "deleted 1 message(s)") {
		t.Fatal("delete output missing")
	}

	// Menu option 8: DISPLAY PE LOADING; option 7: DUMP SYSTEM STATE.
	if err := env.Execute("loading"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MAX-MULTIPROG") {
		t.Fatal("loading display missing")
	}
	if err := env.Execute("dump"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "system state dump") {
		t.Fatal("dump output missing")
	}
	if err := env.Execute("figure1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "VIRTUAL MACHINE ORGANIZATION") {
		t.Fatal("figure1 output missing")
	}

	// Menu option 2: KILL A TASK.
	if err := env.Execute("kill " + id); err != nil {
		t.Fatal(err)
	}
	env.VM().WaitIdle()
}

func TestTraceOptionsCommand(t *testing.T) {
	env, out := newEnv(t)
	if err := env.Execute("trace msg-send on"); err != nil {
		t.Fatal(err)
	}
	if err := env.Execute("trace show"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MSG-SEND    ON") {
		t.Fatalf("trace settings not shown:\n%s", out.String())
	}
	if err := env.Execute("trace all on"); err != nil {
		t.Fatal(err)
	}
	if err := env.Execute("trace all off"); err != nil {
		t.Fatal(err)
	}
	if err := env.Execute("trace bogus on"); err == nil {
		t.Fatal("unknown trace event accepted")
	}
	if err := env.Execute("trace msg-send sideways"); err == nil {
		t.Fatal("bad trace setting accepted")
	}
}

func TestErrorsAndUsage(t *testing.T) {
	env, _ := newEnv(t)
	bad := []string{
		"initiate",
		"initiate nosuchtype",
		"initiate waiter cluster nine",
		"kill",
		"kill notataskid",
		"kill 9.9.9",
		"send",
		"send 9.9.9 msg",
		"queue",
		"queue bad-id",
		"queue 9.9.9",
		"delete",
		"delete bad-id",
		"nonsense",
		"42",
	}
	for _, cmd := range bad {
		if err := env.Execute(cmd); err == nil {
			t.Errorf("command %q should fail", cmd)
		}
	}
	// Empty lines are ignored.
	if err := env.Execute("   "); err != nil {
		t.Errorf("blank line: %v", err)
	}
}

func TestValueParsing(t *testing.T) {
	vals, err := parseValues([]string{"42", "-3", "2.5", "1e3", "true", "false", `"quoted"`, "bare"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 8 {
		t.Fatalf("parsed %d values", len(vals))
	}
	if v, _ := core.AsInt(vals[0]); v != 42 {
		t.Error("integer parse")
	}
	if v, _ := core.AsInt(vals[1]); v != -3 {
		t.Error("negative integer parse")
	}
	if v, _ := core.AsReal(vals[2]); v != 2.5 {
		t.Error("real parse")
	}
	if v, _ := core.AsReal(vals[3]); v != 1000 {
		t.Error("exponent real parse")
	}
	if v, _ := core.AsBool(vals[4]); !v {
		t.Error("true parse")
	}
	if v, _ := core.AsStr(vals[6]); v != "quoted" {
		t.Error("quoted string parse")
	}
	if v, _ := core.AsStr(vals[7]); v != "bare" {
		t.Error("bare string parse")
	}
}

func TestReplAndTerminate(t *testing.T) {
	env, out := newEnv(t)
	script := strings.Join([]string{
		"help",
		"initiate echo any 1 2 3",
		"tasks",
		"bogus-command",
		"0",
	}, "\n")
	if err := env.Repl(strings.NewReader(script), true); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "initiated echo") {
		t.Error("repl did not initiate the task")
	}
	if !strings.Contains(text, "error: exec: unknown command") {
		t.Error("repl did not report the bad command")
	}
	if !strings.Contains(text, "run terminated") {
		t.Error("repl did not terminate the run")
	}
	// Further commands on a terminated VM fail cleanly.
	if err := env.Execute("initiate echo"); err == nil {
		t.Error("initiate after termination should fail")
	}
}

func TestTaskTypesSummary(t *testing.T) {
	env, _ := newEnv(t)
	s := env.TaskTypesSummary()
	if !strings.Contains(s, "echo") || !strings.Contains(s, "waiter") {
		t.Fatalf("summary %q", s)
	}
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	return lines[len(lines)-1]
}
