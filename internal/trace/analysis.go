package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Analysis summarises a trace for off-line study ("Sending trace output to a
// file allows the user to study trace information and make timing analyses
// off-line", Section 12).
type Analysis struct {
	// CountByKind is the number of events of each kind.
	CountByKind map[Kind]int
	// CountByTask is the number of events per task.
	CountByTask map[string]int
	// FirstTick and LastTick bound the clock readings seen per PE.
	FirstTick map[int]int64
	LastTick  map[int]int64
	// TaskSpan maps each task to the tick interval between its TASK-INIT and
	// TASK-TERM events on the initiating PE's clock, when both are present.
	TaskSpan map[string]int64
	// MessagesSent and MessagesAccepted count message traffic.
	MessagesSent     int
	MessagesAccepted int
	// BarrierEntries and ForceSplits count force activity.
	BarrierEntries int
	ForceSplits    int
}

// Analyze computes an Analysis from a slice of events.
func Analyze(events []Event) Analysis {
	a := Analysis{
		CountByKind: make(map[Kind]int),
		CountByTask: make(map[string]int),
		FirstTick:   make(map[int]int64),
		LastTick:    make(map[int]int64),
		TaskSpan:    make(map[string]int64),
	}
	initTick := make(map[string]int64)
	for _, e := range events {
		a.CountByKind[e.Kind]++
		a.CountByTask[e.Task]++
		if first, ok := a.FirstTick[e.PE]; !ok || e.Ticks < first {
			a.FirstTick[e.PE] = e.Ticks
		}
		if last, ok := a.LastTick[e.PE]; !ok || e.Ticks > last {
			a.LastTick[e.PE] = e.Ticks
		}
		switch e.Kind {
		case TaskInit:
			initTick[e.Task] = e.Ticks
		case TaskTerm:
			if start, ok := initTick[e.Task]; ok {
				a.TaskSpan[e.Task] = e.Ticks - start
			}
		case MsgSend:
			a.MessagesSent++
		case MsgAccept:
			a.MessagesAccepted++
		case BarrierEnter:
			a.BarrierEntries++
		case ForceSplit:
			a.ForceSplits++
		}
	}
	return a
}

// Report renders the analysis as a fixed-width text report.
func (a Analysis) Report() string {
	var b strings.Builder
	b.WriteString("Trace analysis\n")
	b.WriteString("  events by kind:\n")
	for _, k := range Kinds() {
		if n := a.CountByKind[k]; n > 0 {
			fmt.Fprintf(&b, "    %-11s %6d\n", k, n)
		}
	}
	tasks := make([]string, 0, len(a.CountByTask))
	for t := range a.CountByTask {
		tasks = append(tasks, t)
	}
	sort.Strings(tasks)
	b.WriteString("  events by task:\n")
	for _, t := range tasks {
		fmt.Fprintf(&b, "    %-14s %6d", t, a.CountByTask[t])
		if span, ok := a.TaskSpan[t]; ok {
			fmt.Fprintf(&b, "   lifetime=%d ticks", span)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  messages: sent=%d accepted=%d\n", a.MessagesSent, a.MessagesAccepted)
	fmt.Fprintf(&b, "  barriers entered=%d force splits=%d\n", a.BarrierEntries, a.ForceSplits)
	return b.String()
}

// ParseLines reads trace lines in the format produced by Event.Line and
// reconstructs events.  It is the inverse used by off-line analysis of a
// trace file.  Lines that do not look like trace lines are skipped.
func ParseLines(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, ok, err := parseLine(line)
		if err != nil {
			return out, err
		}
		if ok {
			out = append(out, e)
		}
	}
	return out, sc.Err()
}

func parseLine(line string) (Event, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Event{}, false, nil
	}
	kind, err := ParseKind(fields[0])
	if err != nil {
		return Event{}, false, nil // not a trace line
	}
	e := Event{Kind: kind}
	var extra []string
	for _, f := range fields[1:] {
		switch {
		case strings.HasPrefix(f, "task="):
			e.Task = strings.TrimPrefix(f, "task=")
		case strings.HasPrefix(f, "peer="):
			e.Other = strings.TrimPrefix(f, "peer=")
		case strings.HasPrefix(f, "pe="):
			n, err := strconv.Atoi(strings.TrimPrefix(f, "pe="))
			if err != nil {
				return Event{}, false, fmt.Errorf("trace: bad pe field %q: %w", f, err)
			}
			e.PE = n
		case strings.HasPrefix(f, "ticks="):
			n, err := strconv.ParseInt(strings.TrimPrefix(f, "ticks="), 10, 64)
			if err != nil {
				return Event{}, false, fmt.Errorf("trace: bad ticks field %q: %w", f, err)
			}
			e.Ticks = n
		default:
			extra = append(extra, f)
		}
	}
	e.Info = strings.Join(extra, " ")
	return e, true, nil
}
