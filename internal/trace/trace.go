// Package trace implements the execution-tracing facility of PISCES 2
// (paper, Section 12).  The user may choose from a fixed list of significant
// event types — task initiation and termination, message send and accept,
// lock and unlock, barrier entry, and force split — and for each enabled
// event a trace line is displayed or written to a file containing the type of
// event, the taskid of the relevant task (or tasks), a clock reading (PE
// number and "ticks" count), and other relevant information.  Tracing may be
// turned on and off per event type and per task; trace files can be studied
// off-line for timing analyses.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind identifies one of the traceable event types listed in Section 12.
type Kind int

// The eight traceable event kinds of Section 12.
const (
	TaskInit Kind = iota
	TaskTerm
	MsgSend
	MsgAccept
	Lock
	Unlock
	BarrierEnter
	ForceSplit
	numKinds
)

// Kinds returns all traceable event kinds in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// String returns the event-type label used on trace lines.
func (k Kind) String() string {
	switch k {
	case TaskInit:
		return "TASK-INIT"
	case TaskTerm:
		return "TASK-TERM"
	case MsgSend:
		return "MSG-SEND"
	case MsgAccept:
		return "MSG-ACCEPT"
	case Lock:
		return "LOCK"
	case Unlock:
		return "UNLOCK"
	case BarrierEnter:
		return "BARRIER"
	case ForceSplit:
		return "FORCE-SPLIT"
	}
	return fmt.Sprintf("EVENT(%d)", int(k))
}

// ParseKind converts a label produced by Kind.String back to a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// Event is one trace record.
type Event struct {
	Kind  Kind
	Task  string // taskid of the relevant task, already formatted
	Other string // taskid of a second involved task (message peer), may be empty
	PE    int    // processor number of the clock reading
	Ticks int64  // tick count of the clock reading
	Info  string // other relevant information for the event type
	Seq   uint64 // global sequence number assigned by the recorder
}

// Line renders the event in the trace-line layout of Section 12:
// event type, taskid(s), clock reading (PE and ticks), other information.
func (e Event) Line() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s task=%-12s", e.Kind, e.Task)
	if e.Other != "" {
		fmt.Fprintf(&b, " peer=%-12s", e.Other)
	}
	fmt.Fprintf(&b, " %-6s %-15s", fmt.Sprintf("pe=%d", e.PE), fmt.Sprintf("ticks=%d", e.Ticks))
	if e.Info != "" {
		fmt.Fprintf(&b, " %s", e.Info)
	}
	return b.String()
}

// Sink receives enabled trace events.  The Recorder calls Emit sequentially
// under its own lock, so implementations need not be safe for concurrent use.
type Sink interface {
	Emit(Event)
}

// WriterSink writes one trace line per event to an io.Writer (the "display on
// screen" and "send to a file" options of Section 12).
type WriterSink struct{ W io.Writer }

// Emit writes the event's trace line.
func (s WriterSink) Emit(e Event) { fmt.Fprintln(s.W, e.Line()) }

// MemorySink retains events in memory for off-line analysis and for tests.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order.  The
// recorder stamps each event with a strictly increasing Seq under its lock,
// so emission order is the run's total event order; under a deterministic
// scheduling backend the whole slice is reproducible from the seed, which is
// what the conformance harness diffs between runs.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Lines returns the rendered trace lines in emission order, a convenient
// golden-comparison form for conformance tests.
func (s *MemorySink) Lines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.events))
	for i, e := range s.events {
		out[i] = e.Line()
	}
	return out
}

// Len returns the number of recorded events.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Reset discards all recorded events.
func (s *MemorySink) Reset() {
	s.mu.Lock()
	s.events = nil
	s.mu.Unlock()
}

// Recorder applies the per-kind and per-task filters and fans enabled events
// out to sinks.  The zero value is a recorder with everything disabled and no
// sinks; NewRecorder returns one with all kinds disabled.
type Recorder struct {
	mu        sync.Mutex
	kindOn    [numKinds]bool
	taskOff   map[string]bool // tasks explicitly disabled
	onlyTasks map[string]bool // if non-empty, only these tasks are traced
	sinks     []Sink
	seq       uint64
	dropped   uint64

	// kindMask mirrors kindOn as an atomic bitmask so hot paths can ask
	// Wants(kind) without taking the mutex — or building the event at all.
	kindMask atomic.Uint64
}

// updateMaskLocked recomputes the atomic kind bitmask; callers hold r.mu.
func (r *Recorder) updateMaskLocked() {
	var mask uint64
	for k, on := range r.kindOn {
		if on {
			mask |= 1 << uint(k)
		}
	}
	r.kindMask.Store(mask)
}

// Wants reports, without locking, whether events of kind k are currently
// traced.  Emitters use it to skip building events (taskid rendering, info
// formatting) that the recorder would immediately drop; the authoritative
// per-task filtering still happens in Record.
func (r *Recorder) Wants(k Kind) bool {
	if k < 0 || k >= numKinds {
		return false
	}
	return r.kindMask.Load()&(1<<uint(k)) != 0
}

// NewRecorder returns a recorder with all event kinds disabled and the given
// sinks attached.
func NewRecorder(sinks ...Sink) *Recorder {
	return &Recorder{sinks: sinks}
}

// AddSink attaches an additional sink.
func (r *Recorder) AddSink(s Sink) {
	r.mu.Lock()
	r.sinks = append(r.sinks, s)
	r.mu.Unlock()
}

// EnableKind turns tracing of kind k on or off ("Tracing may be turned on and
// off for each type of event").
func (r *Recorder) EnableKind(k Kind, on bool) {
	if k < 0 || k >= numKinds {
		return
	}
	r.mu.Lock()
	r.kindOn[k] = on
	r.updateMaskLocked()
	r.mu.Unlock()
}

// EnableAll turns every event kind on or off.
func (r *Recorder) EnableAll(on bool) {
	r.mu.Lock()
	for i := range r.kindOn {
		r.kindOn[i] = on
	}
	r.updateMaskLocked()
	r.mu.Unlock()
}

// KindEnabled reports whether kind k is currently traced.
func (r *Recorder) KindEnabled(k Kind) bool {
	if k < 0 || k >= numKinds {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kindOn[k]
}

// EnableTask turns tracing for a particular task on or off ("and each task").
// Disabling a task suppresses its events regardless of kind settings.
func (r *Recorder) EnableTask(task string, on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.taskOff == nil {
		r.taskOff = make(map[string]bool)
	}
	if on {
		delete(r.taskOff, task)
	} else {
		r.taskOff[task] = true
	}
}

// RestrictToTasks limits tracing to the listed tasks.  Calling it with no
// arguments removes the restriction.
func (r *Recorder) RestrictToTasks(tasks ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(tasks) == 0 {
		r.onlyTasks = nil
		return
	}
	r.onlyTasks = make(map[string]bool, len(tasks))
	for _, t := range tasks {
		r.onlyTasks[t] = true
	}
}

// Record emits the event to all sinks if its kind and task are enabled.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	if !r.kindOn[e.Kind] || r.taskOff[e.Task] || (r.onlyTasks != nil && !r.onlyTasks[e.Task]) {
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.seq++
	e.Seq = r.seq
	sinks := r.sinks
	r.mu.Unlock()
	for _, s := range sinks {
		s.Emit(e)
	}
}

// Dropped returns the number of events suppressed by filters.  Emitters
// that pre-check Wants skip building disabled-kind events entirely, so those
// never reach the recorder and are not counted here; Dropped counts events
// that were submitted to Record and then filtered (per-task filters, or
// kind filters when the emitter did not pre-check).
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Emitted returns the number of events that passed the filters.
func (r *Recorder) Emitted() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Settings describes the current trace configuration in a human-readable way,
// for the execution environment's "CHANGE TRACE OPTIONS" display.
func (r *Recorder) Settings() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for i, on := range r.kindOn {
		state := "off"
		if on {
			state = "ON"
		}
		fmt.Fprintf(&b, "%-11s %s\n", Kind(i), state)
	}
	if len(r.taskOff) > 0 {
		tasks := make([]string, 0, len(r.taskOff))
		for t := range r.taskOff {
			tasks = append(tasks, t)
		}
		sort.Strings(tasks)
		fmt.Fprintf(&b, "disabled tasks: %s\n", strings.Join(tasks, ", "))
	}
	if len(r.onlyTasks) > 0 {
		tasks := make([]string, 0, len(r.onlyTasks))
		for t := range r.onlyTasks {
			tasks = append(tasks, t)
		}
		sort.Strings(tasks)
		fmt.Fprintf(&b, "restricted to tasks: %s\n", strings.Join(tasks, ", "))
	}
	return b.String()
}
