package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStringsRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round trip %v -> %v", k, got)
		}
	}
	if _, err := ParseKind("NOT-AN-EVENT"); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if len(Kinds()) != 8 {
		t.Fatalf("the paper lists 8 traceable event types, Kinds() has %d", len(Kinds()))
	}
}

func TestRecorderKindFilter(t *testing.T) {
	sink := &MemorySink{}
	r := NewRecorder(sink)
	ev := Event{Kind: MsgSend, Task: "1.2.3", PE: 4, Ticks: 100}

	r.Record(ev) // everything disabled by default
	if sink.Len() != 0 {
		t.Fatal("event recorded while kind disabled")
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}

	r.EnableKind(MsgSend, true)
	r.Record(ev)
	if sink.Len() != 1 {
		t.Fatal("event not recorded while kind enabled")
	}
	if !r.KindEnabled(MsgSend) || r.KindEnabled(Lock) {
		t.Fatal("KindEnabled mismatch")
	}

	r.EnableKind(MsgSend, false)
	r.Record(ev)
	if sink.Len() != 1 {
		t.Fatal("event recorded after kind re-disabled")
	}

	// Out-of-range kinds are ignored safely.
	r.EnableKind(Kind(-1), true)
	r.EnableKind(Kind(100), true)
	if r.KindEnabled(Kind(-1)) || r.KindEnabled(Kind(100)) {
		t.Fatal("out-of-range kind reported enabled")
	}
}

func TestRecorderTaskFilter(t *testing.T) {
	sink := &MemorySink{}
	r := NewRecorder(sink)
	r.EnableAll(true)

	r.EnableTask("1.1.1", false)
	r.Record(Event{Kind: Lock, Task: "1.1.1"})
	r.Record(Event{Kind: Lock, Task: "1.2.1"})
	if sink.Len() != 1 {
		t.Fatalf("len = %d, want 1 (disabled task filtered)", sink.Len())
	}
	r.EnableTask("1.1.1", true)
	r.Record(Event{Kind: Lock, Task: "1.1.1"})
	if sink.Len() != 2 {
		t.Fatal("re-enabled task still filtered")
	}

	r.RestrictToTasks("2.1.1")
	r.Record(Event{Kind: Lock, Task: "1.2.1"})
	r.Record(Event{Kind: Lock, Task: "2.1.1"})
	if sink.Len() != 3 {
		t.Fatalf("len = %d, want 3 (restriction)", sink.Len())
	}
	r.RestrictToTasks()
	r.Record(Event{Kind: Lock, Task: "1.2.1"})
	if sink.Len() != 4 {
		t.Fatal("restriction not lifted")
	}
}

func TestRecorderSequenceNumbers(t *testing.T) {
	sink := &MemorySink{}
	r := NewRecorder(sink)
	r.EnableAll(true)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: TaskInit, Task: "x"})
	}
	evs := sink.Events()
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if r.Emitted() != 5 {
		t.Fatalf("Emitted = %d", r.Emitted())
	}
}

func TestWriterSinkAndSettings(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(WriterSink{W: &buf})
	r.EnableKind(ForceSplit, true)
	r.Record(Event{Kind: ForceSplit, Task: "2.3.7", PE: 9, Ticks: 4242, Info: "members=5"})
	line := strings.TrimSpace(buf.String())
	for _, want := range []string{"FORCE-SPLIT", "task=2.3.7", "pe=9", "ticks=4242", "members=5"} {
		if !strings.Contains(line, want) {
			t.Errorf("trace line %q missing %q", line, want)
		}
	}
	settings := r.Settings()
	if !strings.Contains(settings, "FORCE-SPLIT ON") {
		t.Errorf("settings missing enabled kind:\n%s", settings)
	}
	if !strings.Contains(settings, "TASK-INIT   off") {
		t.Errorf("settings missing disabled kind:\n%s", settings)
	}
}

func TestAddSink(t *testing.T) {
	a, b := &MemorySink{}, &MemorySink{}
	r := NewRecorder(a)
	r.AddSink(b)
	r.EnableAll(true)
	r.Record(Event{Kind: Unlock, Task: "t"})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out failed: %d, %d", a.Len(), b.Len())
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestLineParseRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: TaskInit, Task: "1.1.1", PE: 3, Ticks: 10, Info: "type=worker"},
		{Kind: MsgSend, Task: "1.1.1", Other: "2.1.4", PE: 3, Ticks: 25, Info: "msgtype=result args=3"},
		{Kind: BarrierEnter, Task: "4.2.9", PE: 17, Ticks: 99999},
	}
	var buf bytes.Buffer
	for _, e := range events {
		buf.WriteString(e.Line() + "\n")
	}
	buf.WriteString("this is not a trace line\n\n")
	parsed, err := ParseLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(events))
	}
	for i, e := range events {
		p := parsed[i]
		if p.Kind != e.Kind || p.Task != e.Task || p.Other != e.Other || p.PE != e.PE || p.Ticks != e.Ticks {
			t.Errorf("event %d mismatch: got %+v want %+v", i, p, e)
		}
		if e.Info != "" && p.Info != e.Info {
			t.Errorf("event %d info %q, want %q", i, p.Info, e.Info)
		}
	}
}

func TestAnalyze(t *testing.T) {
	events := []Event{
		{Kind: TaskInit, Task: "1.1.1", PE: 3, Ticks: 10},
		{Kind: MsgSend, Task: "1.1.1", Other: "1.2.2", PE: 3, Ticks: 20},
		{Kind: MsgAccept, Task: "1.2.2", PE: 3, Ticks: 30},
		{Kind: BarrierEnter, Task: "1.1.1", PE: 3, Ticks: 40},
		{Kind: ForceSplit, Task: "1.1.1", PE: 3, Ticks: 45},
		{Kind: TaskTerm, Task: "1.1.1", PE: 3, Ticks: 110},
	}
	a := Analyze(events)
	if a.MessagesSent != 1 || a.MessagesAccepted != 1 {
		t.Errorf("message counts: %+v", a)
	}
	if a.BarrierEntries != 1 || a.ForceSplits != 1 {
		t.Errorf("force counts: %+v", a)
	}
	if a.TaskSpan["1.1.1"] != 100 {
		t.Errorf("task span = %d, want 100", a.TaskSpan["1.1.1"])
	}
	if a.FirstTick[3] != 10 || a.LastTick[3] != 110 {
		t.Errorf("tick bounds = %d..%d", a.FirstTick[3], a.LastTick[3])
	}
	rep := a.Report()
	for _, want := range []string{"TASK-INIT", "messages: sent=1 accepted=1", "lifetime=100"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// Property: an event that passes the filters always appears in the sink with
// the same kind/task/pe/ticks it was recorded with, and Line/Parse round-trips
// arbitrary PE and tick values.
func TestQuickLineRoundTrip(t *testing.T) {
	f := func(kindRaw uint8, pe uint8, ticks uint32) bool {
		k := Kind(int(kindRaw) % int(numKinds))
		e := Event{Kind: k, Task: "7.3.42", PE: int(pe), Ticks: int64(ticks)}
		parsed, ok, err := parseLine(e.Line())
		if err != nil || !ok {
			return false
		}
		return parsed.Kind == e.Kind && parsed.Task == e.Task && parsed.PE == e.PE && parsed.Ticks == e.Ticks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	r := NewRecorder(&MemorySink{})
	r.EnableAll(true)
	e := Event{Kind: MsgSend, Task: "1.1.1", PE: 3, Ticks: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
}

func BenchmarkRecordFiltered(b *testing.B) {
	r := NewRecorder(&MemorySink{})
	e := Event{Kind: MsgSend, Task: "1.1.1", PE: 3, Ticks: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
}
