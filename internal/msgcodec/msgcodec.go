// Package msgcodec encodes and decodes the argument lists carried by PISCES 2
// messages.  In the FLEX/32 implementation "Messages consist of a header and
// a list of packets containing the arguments" and live in a shared-memory
// heap "with explicit allocation/deallocation as messages are sent and
// accepted" (paper, Section 11).  This package defines the wire layout —
// a fixed-size header plus fixed-size packets — so that the run-time can
// charge the exact number of shared-memory bytes for every message and
// recover them when the message is accepted, which is what the Section 13
// storage measurements depend on.
//
// Supported argument types mirror the Pisces Fortran types: INTEGER, REAL
// (stored as float64, Fortran DOUBLE PRECISION), LOGICAL, CHARACTER strings,
// TASKID values, WINDOW values, and one-dimensional INTEGER and REAL arrays.
package msgcodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ArgKind identifies the type of one message argument.
type ArgKind uint8

// Argument kinds.
const (
	KindInteger ArgKind = iota + 1
	KindReal
	KindLogical
	KindCharacter
	KindTaskID
	KindWindow
	KindIntArray
	KindRealArray
)

// String returns the Pisces Fortran name of the kind.
func (k ArgKind) String() string {
	switch k {
	case KindInteger:
		return "INTEGER"
	case KindReal:
		return "REAL"
	case KindLogical:
		return "LOGICAL"
	case KindCharacter:
		return "CHARACTER"
	case KindTaskID:
		return "TASKID"
	case KindWindow:
		return "WINDOW"
	case KindIntArray:
		return "INTEGER-ARRAY"
	case KindRealArray:
		return "REAL-ARRAY"
	}
	return fmt.Sprintf("ArgKind(%d)", uint8(k))
}

// TaskIDValue is the codec-level representation of a TASKID: cluster number,
// slot number, and unique number (paper, Section 6).
type TaskIDValue struct {
	Cluster int32
	Slot    int32
	Unique  int32
}

// WindowValue is the codec-level representation of a WINDOW: "the taskid of
// the owner, the address of the array, and a descriptor for the subarray"
// (paper, Section 8).
type WindowValue struct {
	Owner   TaskIDValue
	ArrayID int32
	Row1    int32
	Row2    int32
	Col1    int32
	Col2    int32
}

// Layout constants.  The original system used fixed-size packets chained off
// a header; 32-byte packets with an 8-byte argument descriptor are a faithful
// model and keep the arithmetic simple.
const (
	// HeaderBytes is the fixed size of a message header in shared memory:
	// message type, sender taskid, destination taskid, argument count, and
	// queue linkage.
	HeaderBytes = 64
	// PacketBytes is the size of each argument packet.
	PacketBytes = 32
	// packetPayload is the usable payload of a packet after its descriptor.
	packetPayload = PacketBytes - 8
)

// ErrCorrupt is returned when decoding malformed bytes.
var ErrCorrupt = errors.New("msgcodec: corrupt message encoding")

// ErrTooManyArgs is returned by Encode when the argument list exceeds the
// wire format's uint16 count field.  Without the check the count would wrap
// silently and the buffer would decode to a truncated argument list.
var ErrTooManyArgs = errors.New("msgcodec: too many arguments for the wire format")

// MaxArgs is the largest argument count the wire format can carry.
const MaxArgs = math.MaxUint16

// Arg is one argument value.  Exactly one field is meaningful, selected by Kind.
type Arg struct {
	Kind      ArgKind
	Integer   int64
	Real      float64
	Logical   bool
	Character string
	TaskID    TaskIDValue
	Window    WindowValue
	IntArray  []int64
	RealArray []float64
}

// Int returns an INTEGER argument.
func Int(v int64) Arg { return Arg{Kind: KindInteger, Integer: v} }

// Real returns a REAL argument.
func Real(v float64) Arg { return Arg{Kind: KindReal, Real: v} }

// Logical returns a LOGICAL argument.
func Logical(v bool) Arg { return Arg{Kind: KindLogical, Logical: v} }

// Str returns a CHARACTER argument.
func Str(v string) Arg { return Arg{Kind: KindCharacter, Character: v} }

// TaskID returns a TASKID argument.
func TaskID(v TaskIDValue) Arg { return Arg{Kind: KindTaskID, TaskID: v} }

// Window returns a WINDOW argument.
func Window(v WindowValue) Arg { return Arg{Kind: KindWindow, Window: v} }

// Ints returns an INTEGER array argument.
func Ints(v []int64) Arg { return Arg{Kind: KindIntArray, IntArray: v} }

// Reals returns a REAL array argument.
func Reals(v []float64) Arg { return Arg{Kind: KindRealArray, RealArray: v} }

// payloadBytes returns the number of payload bytes the argument needs.
func (a Arg) payloadBytes() (int, error) {
	switch a.Kind {
	case KindInteger, KindReal:
		return 8, nil
	case KindLogical:
		return 1, nil
	case KindCharacter:
		return len(a.Character), nil
	case KindTaskID:
		return 12, nil
	case KindWindow:
		return 12 + 4 + 16, nil
	case KindIntArray:
		return 8 * len(a.IntArray), nil
	case KindRealArray:
		return 8 * len(a.RealArray), nil
	default:
		return 0, fmt.Errorf("msgcodec: unknown argument kind %d", a.Kind)
	}
}

// Packets returns the number of fixed-size packets the argument occupies.
func (a Arg) Packets() (int, error) {
	n, err := a.payloadBytes()
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 1, nil
	}
	return (n + packetPayload - 1) / packetPayload, nil
}

// EncodedSize returns the number of shared-memory bytes a message with the
// given arguments occupies: one header plus the packets of every argument.
// This is the quantity charged against the message heap when the message is
// sent and released when it is accepted.
func EncodedSize(args []Arg) (int, error) {
	total := HeaderBytes
	for _, a := range args {
		p, err := a.Packets()
		if err != nil {
			return 0, err
		}
		total += p * PacketBytes
	}
	return total, nil
}

// Encode serialises the argument list.  The layout is:
//
//	uint16 argument count
//	for each argument: uint8 kind, uint32 payload length, payload bytes
//
// Encode is used both to move argument bytes through the simulated shared
// memory and to give messages a deterministic, testable wire form.
func Encode(args []Arg) ([]byte, error) {
	return AppendEncode(make([]byte, 0, 64), args)
}

// AppendEncode appends the wire encoding of args to dst and returns the
// extended slice.  It allocates nothing beyond dst's growth, so callers on
// the message hot path can encode straight into a pre-sized buffer (the
// run-time encodes into the sending cluster's shared-memory shard, whose
// packet-model size always bounds the wire size).
func AppendEncode(dst []byte, args []Arg) ([]byte, error) {
	if len(args) > MaxArgs {
		return nil, fmt.Errorf("%w: %d arguments, wire count field holds at most %d", ErrTooManyArgs, len(args), MaxArgs)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(args)))
	for _, a := range args {
		n, err := a.payloadBytes()
		if err != nil {
			return nil, err
		}
		dst = append(dst, byte(a.Kind))
		dst = binary.BigEndian.AppendUint32(dst, uint32(n))
		dst = a.appendPayload(dst)
	}
	return dst, nil
}

// appendPayload appends the argument's payload bytes.  Unknown kinds are
// rejected by the payloadBytes call in AppendEncode before this runs.
func (a Arg) appendPayload(dst []byte) []byte {
	switch a.Kind {
	case KindInteger:
		return binary.BigEndian.AppendUint64(dst, uint64(a.Integer))
	case KindReal:
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Real))
	case KindLogical:
		if a.Logical {
			return append(dst, 1)
		}
		return append(dst, 0)
	case KindCharacter:
		return append(dst, a.Character...)
	case KindTaskID:
		return appendTaskID(dst, a.TaskID)
	case KindWindow:
		dst = appendTaskID(dst, a.Window.Owner)
		dst = appendInt32(dst, a.Window.ArrayID)
		dst = appendInt32(dst, a.Window.Row1)
		dst = appendInt32(dst, a.Window.Row2)
		dst = appendInt32(dst, a.Window.Col1)
		return appendInt32(dst, a.Window.Col2)
	case KindIntArray:
		for _, v := range a.IntArray {
			dst = binary.BigEndian.AppendUint64(dst, uint64(v))
		}
		return dst
	case KindRealArray:
		for _, v := range a.RealArray {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
		}
		return dst
	}
	return dst
}

func appendTaskID(b []byte, t TaskIDValue) []byte {
	b = appendInt32(b, t.Cluster)
	b = appendInt32(b, t.Slot)
	return appendInt32(b, t.Unique)
}

func appendInt32(b []byte, v int32) []byte {
	return binary.BigEndian.AppendUint32(b, uint32(v))
}

// Decode reverses Encode.
func Decode(data []byte) ([]Arg, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: short buffer", ErrCorrupt)
	}
	count := int(binary.BigEndian.Uint16(data[0:2]))
	pos := 2
	args := make([]Arg, 0, count)
	for i := 0; i < count; i++ {
		if pos+5 > len(data) {
			return nil, fmt.Errorf("%w: truncated argument %d header", ErrCorrupt, i)
		}
		kind := ArgKind(data[pos])
		n := int(binary.BigEndian.Uint32(data[pos+1 : pos+5]))
		pos += 5
		if pos+n > len(data) {
			return nil, fmt.Errorf("%w: truncated argument %d payload", ErrCorrupt, i)
		}
		payload := data[pos : pos+n]
		pos += n
		a, err := decodePayload(kind, payload)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-pos)
	}
	return args, nil
}

func decodePayload(kind ArgKind, payload []byte) (Arg, error) {
	switch kind {
	case KindInteger:
		if len(payload) != 8 {
			return Arg{}, fmt.Errorf("%w: INTEGER payload %d bytes", ErrCorrupt, len(payload))
		}
		return Int(int64(binary.BigEndian.Uint64(payload))), nil
	case KindReal:
		if len(payload) != 8 {
			return Arg{}, fmt.Errorf("%w: REAL payload %d bytes", ErrCorrupt, len(payload))
		}
		return Real(math.Float64frombits(binary.BigEndian.Uint64(payload))), nil
	case KindLogical:
		if len(payload) != 1 {
			return Arg{}, fmt.Errorf("%w: LOGICAL payload %d bytes", ErrCorrupt, len(payload))
		}
		return Logical(payload[0] != 0), nil
	case KindCharacter:
		return Str(string(payload)), nil
	case KindTaskID:
		t, err := decodeTaskID(payload)
		if err != nil {
			return Arg{}, err
		}
		return TaskID(t), nil
	case KindWindow:
		if len(payload) != 32 {
			return Arg{}, fmt.Errorf("%w: WINDOW payload %d bytes", ErrCorrupt, len(payload))
		}
		owner, err := decodeTaskID(payload[0:12])
		if err != nil {
			return Arg{}, err
		}
		w := WindowValue{
			Owner:   owner,
			ArrayID: int32(binary.BigEndian.Uint32(payload[12:16])),
			Row1:    int32(binary.BigEndian.Uint32(payload[16:20])),
			Row2:    int32(binary.BigEndian.Uint32(payload[20:24])),
			Col1:    int32(binary.BigEndian.Uint32(payload[24:28])),
			Col2:    int32(binary.BigEndian.Uint32(payload[28:32])),
		}
		return Window(w), nil
	case KindIntArray:
		if len(payload)%8 != 0 {
			return Arg{}, fmt.Errorf("%w: INTEGER array payload %d bytes", ErrCorrupt, len(payload))
		}
		vals := make([]int64, len(payload)/8)
		for i := range vals {
			vals[i] = int64(binary.BigEndian.Uint64(payload[i*8 : i*8+8]))
		}
		return Ints(vals), nil
	case KindRealArray:
		if len(payload)%8 != 0 {
			return Arg{}, fmt.Errorf("%w: REAL array payload %d bytes", ErrCorrupt, len(payload))
		}
		vals := make([]float64, len(payload)/8)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.BigEndian.Uint64(payload[i*8 : i*8+8]))
		}
		return Reals(vals), nil
	default:
		return Arg{}, fmt.Errorf("%w: unknown argument kind %d", ErrCorrupt, kind)
	}
}

func decodeTaskID(payload []byte) (TaskIDValue, error) {
	// Exactly 12 bytes, like the INTEGER/REAL/WINDOW checks: a top-level
	// TASKID argument with trailing garbage is corrupt, not "close enough".
	// (WINDOW decoding passes 12-byte sub-slices, so it is unaffected.)
	if len(payload) != 12 {
		return TaskIDValue{}, fmt.Errorf("%w: TASKID payload %d bytes, want 12", ErrCorrupt, len(payload))
	}
	return TaskIDValue{
		Cluster: int32(binary.BigEndian.Uint32(payload[0:4])),
		Slot:    int32(binary.BigEndian.Uint32(payload[4:8])),
		Unique:  int32(binary.BigEndian.Uint32(payload[8:12])),
	}, nil
}

// Equal reports whether two arguments have the same kind and value.
func Equal(a, b Arg) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindInteger:
		return a.Integer == b.Integer
	case KindReal:
		return a.Real == b.Real || (math.IsNaN(a.Real) && math.IsNaN(b.Real))
	case KindLogical:
		return a.Logical == b.Logical
	case KindCharacter:
		return a.Character == b.Character
	case KindTaskID:
		return a.TaskID == b.TaskID
	case KindWindow:
		return a.Window == b.Window
	case KindIntArray:
		if len(a.IntArray) != len(b.IntArray) {
			return false
		}
		for i := range a.IntArray {
			if a.IntArray[i] != b.IntArray[i] {
				return false
			}
		}
		return true
	case KindRealArray:
		if len(a.RealArray) != len(b.RealArray) {
			return false
		}
		for i := range a.RealArray {
			av, bv := a.RealArray[i], b.RealArray[i]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				return false
			}
		}
		return true
	}
	return false
}
