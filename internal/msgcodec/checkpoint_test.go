package msgcodec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// TestCheckpointRoundTrip: encode→decode reproduces the section list, byte
// for byte, including empty sections and an empty container.
func TestCheckpointRoundTrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		{{}},
		{[]byte("one")},
		{[]byte("a"), {}, []byte("ccc"), bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for i, sections := range cases {
		blob, err := EncodeCheckpoint(sections)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		back, err := DecodeCheckpoint(blob)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(back) != len(sections) {
			t.Fatalf("case %d: %d sections -> %d", i, len(sections), len(back))
		}
		for j := range sections {
			if !bytes.Equal(back[j], sections[j]) {
				t.Fatalf("case %d: section %d changed across round trip", i, j)
			}
		}
	}
}

// TestCheckpointRejectsCorrupt drives the decoder through every validation
// branch: truncation, bad magic, bad version, forged counts and lengths, and
// trailing garbage.  Each must fail with ErrCorrupt, and the forged-length
// cases must fail BEFORE any allocation sized from the forged value (the test
// passing without an OOM is itself the evidence).
func TestCheckpointRejectsCorrupt(t *testing.T) {
	good, err := EncodeCheckpoint([][]byte{[]byte("abc"), []byte("defg")})
	if err != nil {
		t.Fatal(err)
	}

	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:9],
		"bad magic":      mut(func(b []byte) []byte { b[0] ^= 0xFF; return b }),
		"bad version":    mut(func(b []byte) []byte { b[5] = CheckpointVersion + 1; return b }),
		"truncated body": good[:len(good)-2],
		"trailing junk":  append(append([]byte(nil), good...), 0),
		// A count far larger than the remaining bytes could justify: must be
		// rejected before make([][]byte, count).
		"forged count": mut(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[6:], 0xFFFFF)
			return b
		}),
		// A section length beyond MaxCheckpointBytes: must be rejected before
		// the length is used to slice.
		"forged section length": mut(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[10:], MaxCheckpointBytes+1)
			return b
		}),
		// A plausible-but-too-long section length.
		"overlong section": mut(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[10:], uint32(len(b)))
			return b
		}),
	}
	for name, data := range cases {
		if _, err := DecodeCheckpoint(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestCheckpointEncodeBounds: the encoder refuses to produce a container the
// decoder would reject.
func TestCheckpointEncodeBounds(t *testing.T) {
	if _, err := EncodeCheckpoint(make([][]byte, maxCheckpointSections+1)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized section count: err = %v, want ErrCorrupt", err)
	}
	// A single section over the byte bound.  Allocating 256 MiB in a unit test
	// is fine once; the encoder must refuse before copying it.
	big := make([]byte, MaxCheckpointBytes+1)
	if _, err := EncodeCheckpoint([][]byte{big}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized section: err = %v, want ErrCorrupt", err)
	}
}

// FuzzCheckpoint is the checkpoint-container round-trip target: for arbitrary
// bytes, DecodeCheckpoint must never panic; whenever it succeeds, re-encoding
// the sections must reproduce the input byte-identically (the container
// format is canonical), and decoding again must return the same sections.
func FuzzCheckpoint(f *testing.F) {
	for _, sections := range [][][]byte{
		nil,
		{{}},
		{[]byte("section"), bytes.Repeat([]byte{7}, 100)},
	} {
		if blob, err := EncodeCheckpoint(sections); err == nil {
			f.Add(blob)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x69, 0x43, 0x6b, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF}) // forged count
	f.Add([]byte{0x50, 0x69, 0x43, 0x6b, 0, 1, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		sections, err := DecodeCheckpoint(data)
		if err != nil {
			return // corrupt input rejected without panicking: fine
		}
		blob, err := EncodeCheckpoint(sections)
		if err != nil {
			t.Fatalf("EncodeCheckpoint of decoded sections failed: %v", err)
		}
		if !bytes.Equal(blob, data) {
			t.Fatalf("decode+encode changed the container: %d -> %d bytes", len(data), len(blob))
		}
		back, err := DecodeCheckpoint(blob)
		if err != nil {
			t.Fatalf("Decode(Encode(x)) failed: %v", err)
		}
		if len(back) != len(sections) {
			t.Fatalf("round trip changed section count: %d -> %d", len(sections), len(back))
		}
		for i := range sections {
			if !bytes.Equal(back[i], sections[i]) {
				t.Fatalf("section %d changed across round trip", i)
			}
		}
	})
}
