package msgcodec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, []byte("hello frames"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p, 0); err != nil {
			t.Fatalf("write %d bytes: %v", len(p), err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		got, err := ReadFrame(&buf, scratch, 0)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		scratch = got
	}
	if _, err := ReadFrame(&buf, scratch, 0); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

// TestFrameSizeBoundary pins the maximum exactly: a payload of max bytes
// passes both directions, max+1 is ErrCorrupt on write and — via a forged
// prefix — ErrCorrupt on read before any allocation.
func TestFrameSizeBoundary(t *testing.T) {
	const max = 1024
	var buf bytes.Buffer
	atMax := make([]byte, max)
	if err := WriteFrame(&buf, atMax, max); err != nil {
		t.Fatalf("write at max: %v", err)
	}
	got, err := ReadFrame(&buf, nil, max)
	if err != nil {
		t.Fatalf("read at max: %v", err)
	}
	if len(got) != max {
		t.Fatalf("read %d bytes, want %d", len(got), max)
	}

	if err := WriteFrame(&buf, make([]byte, max+1), max); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("write over max: got %v, want ErrCorrupt", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized write left %d bytes in the stream", buf.Len())
	}
}

// TestFrameRejectsOversizedPrefixBeforeAllocating forges a length prefix
// claiming ~4 GiB with no payload behind it: the reader must fail with
// ErrCorrupt from the prefix alone (an allocation of that size would OOM
// long before io.ReadFull noticed the missing bytes).
func TestFrameRejectsOversizedPrefixBeforeAllocating(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xFFFF_FFF0)
	_, err := ReadFrame(bytes.NewReader(hdr[:]), nil, 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}

	// One past the configured maximum is enough to trip it, too.
	binary.BigEndian.PutUint32(hdr[:], 1025)
	_, err = ReadFrame(bytes.NewReader(hdr[:]), nil, 1024)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("prefix max+1: got %v, want ErrCorrupt", err)
	}
}

// TestFrameTruncatedPayload distinguishes a mid-frame stream end from a
// clean one.
func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc), nil, 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: got %v, want io.ErrUnexpectedEOF", err)
	}
}
