package msgcodec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, []byte("hello frames"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p, 0); err != nil {
			t.Fatalf("write %d bytes: %v", len(p), err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		got, err := ReadFrame(&buf, scratch, 0)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		scratch = got
	}
	if _, err := ReadFrame(&buf, scratch, 0); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

// TestFrameSizeBoundary pins the maximum exactly: a payload of max bytes
// passes both directions, max+1 is ErrCorrupt on write and — via a forged
// prefix — ErrCorrupt on read before any allocation.
func TestFrameSizeBoundary(t *testing.T) {
	const max = 1024
	var buf bytes.Buffer
	atMax := make([]byte, max)
	if err := WriteFrame(&buf, atMax, max); err != nil {
		t.Fatalf("write at max: %v", err)
	}
	got, err := ReadFrame(&buf, nil, max)
	if err != nil {
		t.Fatalf("read at max: %v", err)
	}
	if len(got) != max {
		t.Fatalf("read %d bytes, want %d", len(got), max)
	}

	if err := WriteFrame(&buf, make([]byte, max+1), max); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("write over max: got %v, want ErrCorrupt", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized write left %d bytes in the stream", buf.Len())
	}
}

// TestFrameRejectsOversizedPrefixBeforeAllocating forges a length prefix
// claiming ~4 GiB with no payload behind it: the reader must fail with
// ErrCorrupt from the prefix alone (an allocation of that size would OOM
// long before io.ReadFull noticed the missing bytes).
func TestFrameRejectsOversizedPrefixBeforeAllocating(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xFFFF_FFF0)
	_, err := ReadFrame(bytes.NewReader(hdr[:]), nil, 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}

	// One past the configured maximum is enough to trip it, too.
	binary.BigEndian.PutUint32(hdr[:], 1025)
	_, err = ReadFrame(bytes.NewReader(hdr[:]), nil, 1024)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("prefix max+1: got %v, want ErrCorrupt", err)
	}
}

// TestFrameTruncatedPayload distinguishes a mid-frame stream end from a
// clean one.
func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc), nil, 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: got %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestBatchFraming covers the batch helpers against the streaming reader:
// frames appended with AppendFrame and BeginFrame/EndFrame come back in
// order through both NextFrame and ReadFrame (a batch IS the stream bytes).
func TestBatchFraming(t *testing.T) {
	payloads := [][]byte{{}, {7}, []byte("batched frame"), bytes.Repeat([]byte{0xCD}, 1000)}
	var batch []byte
	var err error
	for i, p := range payloads {
		if i%2 == 0 {
			if batch, err = AppendFrame(batch, p, 0); err != nil {
				t.Fatalf("AppendFrame %d: %v", i, err)
			}
		} else {
			var start int
			batch, start = BeginFrame(batch)
			batch = append(batch, p...)
			if batch, err = EndFrame(batch, start, 0); err != nil {
				t.Fatalf("EndFrame %d: %v", i, err)
			}
		}
	}

	rest := batch
	for i, want := range payloads {
		var got []byte
		got, rest, err = NextFrame(rest, 0)
		if err != nil {
			t.Fatalf("NextFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, _, err = NextFrame(rest, 0); err != io.EOF {
		t.Fatalf("end of batch: got %v, want io.EOF", err)
	}

	r := bytes.NewReader(batch)
	for i, want := range payloads {
		got, err := ReadFrame(r, nil, 0)
		if err != nil {
			t.Fatalf("ReadFrame %d from batch: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("streamed frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
}

// TestBatchBoundaryAtCapacity pins the boundary case the transport's writer
// hits when frames exactly fill the batch buffer: a batch built to precisely
// its capacity splits cleanly, with the last frame ending exactly at the
// buffer's end (no trailing bytes, no truncation error).
func TestBatchBoundaryAtCapacity(t *testing.T) {
	const capacity = 256
	batch := make([]byte, 0, capacity)
	var err error
	// Frames of payload size 28 occupy exactly 32 bytes each: 8 of them fill
	// the 256-byte buffer to the brim.
	payload := bytes.Repeat([]byte{0x5A}, 28)
	for len(batch) < capacity {
		if batch, err = AppendFrame(batch, payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(batch) != capacity || cap(batch) != capacity {
		t.Fatalf("batch is %d/%d bytes, want exactly %d (the append must not have grown the buffer)", len(batch), cap(batch), capacity)
	}
	n := 0
	for rest := batch; ; n++ {
		var got []byte
		got, rest, err = NextFrame(rest, 0)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame %d corrupted", n)
		}
	}
	if n != capacity/32 {
		t.Fatalf("split %d frames, want %d", n, capacity/32)
	}
}

// TestBatchOversizedFrame: EndFrame must reject a payload over the maximum
// and truncate the partial frame away so the batch stays well-formed, and
// NextFrame must reject an oversized prefix without touching the payload.
func TestBatchOversizedFrame(t *testing.T) {
	const max = 64
	batch, err := AppendFrame(nil, []byte("ok"), max)
	if err != nil {
		t.Fatal(err)
	}
	good := len(batch)

	batch, start := BeginFrame(batch)
	batch = append(batch, make([]byte, max+1)...)
	batch, err = EndFrame(batch, start, max)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("EndFrame over max: got %v, want ErrCorrupt", err)
	}
	if len(batch) != good {
		t.Fatalf("EndFrame left %d bytes, want the batch truncated back to %d", len(batch), good)
	}
	if _, err := AppendFrame(batch, make([]byte, max+1), max); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("AppendFrame over max: got %v, want ErrCorrupt", err)
	}

	// The surviving batch still splits cleanly.
	payload, rest, err := NextFrame(batch, max)
	if err != nil || string(payload) != "ok" || len(rest) != 0 {
		t.Fatalf("batch after rejected frames: payload %q rest %d err %v", payload, len(rest), err)
	}

	// An oversized prefix inside a batch is corruption, as is a batch that
	// ends mid-frame or mid-prefix.
	big, err := AppendFrame(nil, make([]byte, max+1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NextFrame(big, max); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized prefix: got %v, want ErrCorrupt", err)
	}
	if _, _, err := NextFrame(big[:len(big)-1], 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("batch ending mid-frame: got %v, want ErrCorrupt", err)
	}
	if _, _, err := NextFrame(big[:2], 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("batch ending mid-prefix: got %v, want ErrCorrupt", err)
	}
}
