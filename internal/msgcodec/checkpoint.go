package msgcodec

import (
	"encoding/binary"
	"fmt"
)

// Checkpoint container framing.
//
// A checkpoint is the serialized recoverable state of one or more clusters
// (internal/core builds the per-cluster section bodies; this file owns only
// the container).  The container is a magic/version header followed by a
// count-prefixed list of length-prefixed sections, so a buddy node can
// validate and split a streamed checkpoint without understanding the section
// bodies.  Like ReadFrame, every length is validated against a hard bound
// BEFORE any allocation sized from attacker-controllable bytes happens: a
// truncated or forged checkpoint is an ErrCorrupt, not an OOM.

const (
	// checkpointMagic identifies a checkpoint container ("PiCk").
	checkpointMagic = 0x5069436b
	// CheckpointVersion is bumped whenever the container layout changes.
	CheckpointVersion = 1
	// MaxCheckpointBytes bounds one checkpoint container (and any single
	// section inside it).  Checkpoints carry whole in-queue and log contents,
	// so the bound is far above MaxFrameBytes, but still small enough that a
	// forged length prefix cannot OOM the receiver.
	MaxCheckpointBytes = 256 << 20
	// maxCheckpointSections bounds the section count before the count is used
	// to size anything.
	maxCheckpointSections = 1 << 20
)

// EncodeCheckpoint wraps the given sections into one checkpoint container.
// It fails with ErrCorrupt if a section (or the whole container) exceeds
// MaxCheckpointBytes — a checkpoint the decoder would refuse must not be
// produced in the first place.
func EncodeCheckpoint(sections [][]byte) ([]byte, error) {
	if len(sections) > maxCheckpointSections {
		return nil, fmt.Errorf("%w: checkpoint with %d sections exceeds maximum %d", ErrCorrupt, len(sections), maxCheckpointSections)
	}
	total := 4 + 2 + 4
	for i, s := range sections {
		if len(s) > MaxCheckpointBytes {
			return nil, fmt.Errorf("%w: checkpoint section %d is %d bytes, maximum %d", ErrCorrupt, i, len(s), MaxCheckpointBytes)
		}
		total += 4 + len(s)
	}
	if total > MaxCheckpointBytes {
		return nil, fmt.Errorf("%w: checkpoint container %d bytes exceeds maximum %d", ErrCorrupt, total, MaxCheckpointBytes)
	}
	out := make([]byte, 0, total)
	out = binary.BigEndian.AppendUint32(out, checkpointMagic)
	out = binary.BigEndian.AppendUint16(out, CheckpointVersion)
	out = binary.BigEndian.AppendUint32(out, uint32(len(sections)))
	for _, s := range sections {
		out = binary.BigEndian.AppendUint32(out, uint32(len(s)))
		out = append(out, s...)
	}
	return out, nil
}

// DecodeCheckpoint splits a checkpoint container back into its sections.
// The returned section slices alias data.  Truncated, oversized, or
// trailing-garbage containers are rejected with ErrCorrupt; every bound is
// checked before the value it guards is used for slicing or allocation.
func DecodeCheckpoint(data []byte) ([][]byte, error) {
	if len(data) > MaxCheckpointBytes {
		return nil, fmt.Errorf("%w: checkpoint container %d bytes exceeds maximum %d", ErrCorrupt, len(data), MaxCheckpointBytes)
	}
	if len(data) < 10 {
		return nil, fmt.Errorf("%w: checkpoint header truncated (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.BigEndian.Uint32(data) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	if v := binary.BigEndian.Uint16(data[4:]); v != CheckpointVersion {
		return nil, fmt.Errorf("%w: checkpoint version %d, want %d", ErrCorrupt, v, CheckpointVersion)
	}
	count := binary.BigEndian.Uint32(data[6:])
	if count > maxCheckpointSections {
		return nil, fmt.Errorf("%w: checkpoint section count %d exceeds maximum %d", ErrCorrupt, count, maxCheckpointSections)
	}
	data = data[10:]
	// The remaining bytes bound the believable section count: each section
	// costs at least its 4-byte length prefix.  Checking before make()
	// prevents a forged count from sizing a huge slice.
	if int(count) > len(data)/4+1 {
		return nil, fmt.Errorf("%w: checkpoint section count %d exceeds container size", ErrCorrupt, count)
	}
	sections := make([][]byte, 0, count)
	for i := 0; i < int(count); i++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("%w: checkpoint section %d length prefix truncated", ErrCorrupt, i)
		}
		n := binary.BigEndian.Uint32(data)
		data = data[4:]
		if n > MaxCheckpointBytes {
			return nil, fmt.Errorf("%w: checkpoint section %d length %d exceeds maximum %d", ErrCorrupt, i, n, MaxCheckpointBytes)
		}
		if int(n) > len(data) {
			return nil, fmt.Errorf("%w: checkpoint section %d length %d, only %d bytes left", ErrCorrupt, i, n, len(data))
		}
		sections = append(sections, data[:n:n])
		data = data[n:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after checkpoint sections", ErrCorrupt, len(data))
	}
	return sections, nil
}
