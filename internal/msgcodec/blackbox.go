package msgcodec

import (
	"encoding/binary"
	"fmt"
)

// Black-box (flight recorder) dump framing.
//
// A dump is the frozen contents of one node's flight recorder: a flat list
// of fixed-size structured events, preceded by a header identifying the node
// and the dump instant.  internal/obs owns the recorder rings; this file
// owns only the byte layout, so the `pisces blackbox` subcommand can decode
// a dump written by any node (or merge several) without importing the
// runtime.  Like the checkpoint container, every length is validated BEFORE
// any allocation sized from untrusted bytes happens: a truncated or forged
// dump is an ErrCorrupt, not an OOM.

// Blackbox event kinds.  The values are part of the dump format; append
// only.
const (
	EvSend          uint8 = 1 // routed message left a sender (A=src cluster, B=dst cluster)
	EvAccept        uint8 = 2 // routed message consumed by ACCEPT (A=accepting cluster, B=sender cluster)
	EvKill          uint8 = 3 // task killed by a quota sweep or recovery (A=cluster)
	EvCreditStall   uint8 = 4 // sender blocked on wire flow control (A=peer node)
	EvCheckpoint    uint8 = 5 // HA checkpoint sent or stored (A=origin node, B=epoch)
	EvLimit         uint8 = 6 // resource quota violation (A=resource code, B=limit)
	EvHeartbeatMiss uint8 = 7 // failure detector declared a peer dead (A=suspect node)
)

// EventKindName renders a dump event kind for pretty-printing; unknown kinds
// (from a newer writer) render as kind<N> rather than failing the decode.
func EventKindName(kind uint8) string {
	switch kind {
	case EvSend:
		return "send"
	case EvAccept:
		return "accept"
	case EvKill:
		return "kill"
	case EvCreditStall:
		return "credit-stall"
	case EvCheckpoint:
		return "checkpoint"
	case EvLimit:
		return "limit"
	case EvHeartbeatMiss:
		return "heartbeat-miss"
	default:
		return fmt.Sprintf("kind<%d>", kind)
	}
}

// BlackboxEvent is one fixed-size flight-recorder event.  Edge is the causal
// edge id of the message the event concerns (0 when the event is not tied to
// a message), which is what lets `pisces blackbox` merge dumps from several
// nodes into one causal timeline.
type BlackboxEvent struct {
	// Seq is the recorder's global sequence number: events from one dump
	// sort by Seq to reproduce emission order exactly.
	Seq uint64
	// TS is the event instant in nanoseconds (virtual under -sim).
	TS int64
	// Edge is the causal edge id (0 = not message-scoped).
	Edge uint64
	// Kind is one of the Ev* constants.
	Kind uint8
	// Node is the node id the event was recorded on.
	Node uint8
	// Shard is the recorder shard the event landed in.
	Shard uint16
	// A and B are kind-specific arguments (see the Ev* comments).
	A, B int64
}

const (
	// blackboxMagic identifies a blackbox dump container ("PiBb").
	blackboxMagic = 0x50694262
	// BlackboxVersion is bumped whenever the dump layout changes.
	BlackboxVersion = 1
	// blackboxEventBytes is the fixed wire size of one event.
	blackboxEventBytes = 8 + 8 + 8 + 1 + 1 + 2 + 8 + 8
	// MaxBlackboxEvents bounds the event count before it is used to size
	// anything.  Recorder rings are a few thousand slots per shard, so the
	// bound is generous but still keeps a forged count from sizing gigabytes.
	MaxBlackboxEvents = 1 << 24
)

// EncodeBlackbox wraps a node's recorder events into one dump container.
// dumpTS is the dump instant (virtual under -sim), so merged multi-node
// views can order the dumps themselves.
func EncodeBlackbox(nodeID int, dumpTS int64, events []BlackboxEvent) ([]byte, error) {
	if len(events) > MaxBlackboxEvents {
		return nil, fmt.Errorf("%w: blackbox dump with %d events exceeds maximum %d", ErrCorrupt, len(events), MaxBlackboxEvents)
	}
	out := make([]byte, 0, 4+2+4+8+4+len(events)*blackboxEventBytes)
	out = binary.BigEndian.AppendUint32(out, blackboxMagic)
	out = binary.BigEndian.AppendUint16(out, BlackboxVersion)
	out = binary.BigEndian.AppendUint32(out, uint32(int32(nodeID)))
	out = binary.BigEndian.AppendUint64(out, uint64(dumpTS))
	out = binary.BigEndian.AppendUint32(out, uint32(len(events)))
	for _, e := range events {
		out = binary.BigEndian.AppendUint64(out, e.Seq)
		out = binary.BigEndian.AppendUint64(out, uint64(e.TS))
		out = binary.BigEndian.AppendUint64(out, e.Edge)
		out = append(out, e.Kind, e.Node)
		out = binary.BigEndian.AppendUint16(out, e.Shard)
		out = binary.BigEndian.AppendUint64(out, uint64(e.A))
		out = binary.BigEndian.AppendUint64(out, uint64(e.B))
	}
	return out, nil
}

// DecodeBlackbox splits a dump container back into its header and events.
// Truncated, oversized, or trailing-garbage containers are rejected with
// ErrCorrupt; the event count is validated against the remaining bytes
// before it sizes the result slice.
func DecodeBlackbox(data []byte) (nodeID int, dumpTS int64, events []BlackboxEvent, err error) {
	if len(data) < 22 {
		return 0, 0, nil, fmt.Errorf("%w: blackbox header truncated (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.BigEndian.Uint32(data) != blackboxMagic {
		return 0, 0, nil, fmt.Errorf("%w: bad blackbox magic", ErrCorrupt)
	}
	if v := binary.BigEndian.Uint16(data[4:]); v != BlackboxVersion {
		return 0, 0, nil, fmt.Errorf("%w: blackbox version %d, want %d", ErrCorrupt, v, BlackboxVersion)
	}
	nodeID = int(int32(binary.BigEndian.Uint32(data[6:])))
	dumpTS = int64(binary.BigEndian.Uint64(data[10:]))
	count := binary.BigEndian.Uint32(data[18:])
	data = data[22:]
	if count > MaxBlackboxEvents {
		return 0, 0, nil, fmt.Errorf("%w: blackbox event count %d exceeds maximum %d", ErrCorrupt, count, MaxBlackboxEvents)
	}
	if int64(count)*blackboxEventBytes != int64(len(data)) {
		return 0, 0, nil, fmt.Errorf("%w: blackbox event count %d does not match %d body bytes", ErrCorrupt, count, len(data))
	}
	events = make([]BlackboxEvent, count)
	for i := range events {
		b := data[i*blackboxEventBytes:]
		events[i] = BlackboxEvent{
			Seq:   binary.BigEndian.Uint64(b),
			TS:    int64(binary.BigEndian.Uint64(b[8:])),
			Edge:  binary.BigEndian.Uint64(b[16:]),
			Kind:  b[24],
			Node:  b[25],
			Shard: binary.BigEndian.Uint16(b[26:]),
			A:     int64(binary.BigEndian.Uint64(b[28:])),
			B:     int64(binary.BigEndian.Uint64(b[36:])),
		}
	}
	return nodeID, dumpTS, events, nil
}
