package msgcodec

import (
	"bytes"
	"io"
	"testing"
)

// FuzzCodec is the wire-format round-trip target: for arbitrary bytes, Decode
// must never panic; whenever Decode succeeds, re-encoding the decoded
// arguments and decoding again must reproduce the same argument list
// (Decode∘Encode is the identity on everything Decode accepts).  Seeded from
// sampleArgs so the interesting kinds — TASKID, WINDOW, arrays — are all on
// the initial frontier.
func FuzzCodec(f *testing.F) {
	if seed, err := Encode(sampleArgs()); err == nil {
		f.Add(seed)
	}
	for _, a := range sampleArgs() {
		if one, err := Encode([]Arg{a}); err == nil {
			f.Add(one)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1, byte(KindTaskID), 0, 0, 0, 16})

	f.Fuzz(func(t *testing.T, data []byte) {
		args, err := Decode(data)
		if err != nil {
			return // corrupt input rejected without panicking: fine
		}
		wire, err := Encode(args)
		if err != nil {
			t.Fatalf("Encode of decoded args failed: %v (args %+v)", err, args)
		}
		back, err := Decode(wire)
		if err != nil {
			t.Fatalf("Decode(Encode(x)) failed: %v", err)
		}
		if len(back) != len(args) {
			t.Fatalf("round trip changed argument count: %d -> %d", len(args), len(back))
		}
		for i := range args {
			if !Equal(args[i], back[i]) {
				t.Fatalf("argument %d changed across round trip: %+v -> %+v", i, args[i], back[i])
			}
		}
		if size, err := EncodedSize(args); err != nil || size < HeaderBytes {
			t.Fatalf("EncodedSize of decodable args = (%d, %v)", size, err)
		}
	})
}

// FuzzBatchCodec is the batch-framing round-trip target: NextFrame must
// never panic on arbitrary bytes, and any batch it splits completely must be
// reproduced byte-identically by re-appending the payloads with AppendFrame
// (the framing is canonical, so split∘append is the identity on everything
// NextFrame accepts).  The frames must also come back the same through the
// streaming reader — a batch IS the per-frame wire bytes.
func FuzzBatchCodec(f *testing.F) {
	var seed []byte
	for _, p := range [][]byte{{}, {1}, []byte("frame"), bytes.Repeat([]byte{9}, 300)} {
		seed, _ = AppendFrame(seed, p, 0)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add([]byte{0, 0, 0, 3, 'a'}) // prefix claims more than the batch holds

	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		rest := data
		for {
			var p []byte
			var err error
			p, rest, err = NextFrame(rest, 0)
			if err == io.EOF {
				break
			}
			if err != nil {
				return // corrupt batch rejected without panicking: fine
			}
			payloads = append(payloads, p)
		}
		rebuilt := make([]byte, 0, len(data))
		var err error
		for i, p := range payloads {
			if rebuilt, err = AppendFrame(rebuilt, p, 0); err != nil {
				t.Fatalf("AppendFrame of split payload %d failed: %v", i, err)
			}
		}
		if !bytes.Equal(rebuilt, data) {
			t.Fatalf("split+append changed the batch: %d -> %d bytes", len(data), len(rebuilt))
		}
		r := bytes.NewReader(data)
		for i, want := range payloads {
			got, err := ReadFrame(r, nil, 0)
			if err != nil {
				t.Fatalf("ReadFrame %d of batch stream: %v", i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("frame %d differs between NextFrame and ReadFrame", i)
			}
		}
	})
}
