package msgcodec

import (
	"testing"
)

// FuzzCodec is the wire-format round-trip target: for arbitrary bytes, Decode
// must never panic; whenever Decode succeeds, re-encoding the decoded
// arguments and decoding again must reproduce the same argument list
// (Decode∘Encode is the identity on everything Decode accepts).  Seeded from
// sampleArgs so the interesting kinds — TASKID, WINDOW, arrays — are all on
// the initial frontier.
func FuzzCodec(f *testing.F) {
	if seed, err := Encode(sampleArgs()); err == nil {
		f.Add(seed)
	}
	for _, a := range sampleArgs() {
		if one, err := Encode([]Arg{a}); err == nil {
			f.Add(one)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1, byte(KindTaskID), 0, 0, 0, 16})

	f.Fuzz(func(t *testing.T, data []byte) {
		args, err := Decode(data)
		if err != nil {
			return // corrupt input rejected without panicking: fine
		}
		wire, err := Encode(args)
		if err != nil {
			t.Fatalf("Encode of decoded args failed: %v (args %+v)", err, args)
		}
		back, err := Decode(wire)
		if err != nil {
			t.Fatalf("Decode(Encode(x)) failed: %v", err)
		}
		if len(back) != len(args) {
			t.Fatalf("round trip changed argument count: %d -> %d", len(args), len(back))
		}
		for i := range args {
			if !Equal(args[i], back[i]) {
				t.Fatalf("argument %d changed across round trip: %+v -> %+v", i, args[i], back[i])
			}
		}
		if size, err := EncodedSize(args); err != nil || size < HeaderBytes {
			t.Fatalf("EncodedSize of decodable args = (%d, %v)", size, err)
		}
	})
}
