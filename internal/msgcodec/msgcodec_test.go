package msgcodec

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func sampleArgs() []Arg {
	return []Arg{
		Int(42),
		Int(-7),
		Real(3.14159),
		Real(math.Inf(1)),
		Logical(true),
		Logical(false),
		Str("hello, FLEX/32"),
		Str(""),
		TaskID(TaskIDValue{Cluster: 2, Slot: 5, Unique: 1234}),
		Window(WindowValue{
			Owner:   TaskIDValue{Cluster: 1, Slot: 1, Unique: 9},
			ArrayID: 3, Row1: 1, Row2: 100, Col1: 10, Col2: 20,
		}),
		Ints([]int64{1, -2, 3, 4, 5}),
		Reals([]float64{0.5, -0.25, 1e10}),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	args := sampleArgs()
	data, err := Encode(args)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(args) {
		t.Fatalf("decoded %d args, want %d", len(got), len(args))
	}
	for i := range args {
		if !Equal(args[i], got[i]) {
			t.Errorf("arg %d: got %+v, want %+v", i, got[i], args[i])
		}
	}
}

func TestEncodeEmptyArgList(t *testing.T) {
	data, err := Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d args from empty list", len(got))
	}
	size, err := EncodedSize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if size != HeaderBytes {
		t.Fatalf("empty message size = %d, want header only (%d)", size, HeaderBytes)
	}
}

func TestEncodedSizePacketArithmetic(t *testing.T) {
	cases := []struct {
		arg         Arg
		wantPackets int
	}{
		{Int(1), 1},
		{Real(2.5), 1},
		{Logical(true), 1},
		{Str("x"), 1},
		{Str("this string is longer than twenty-four bytes of payload"), 3},
		{TaskID(TaskIDValue{}), 1},
		{Window(WindowValue{}), 2},
		{Ints(make([]int64, 3)), 1},
		{Ints(make([]int64, 4)), 2},
		{Reals(make([]float64, 100)), 34},
		{Ints(nil), 1},
	}
	for i, c := range cases {
		p, err := c.arg.Packets()
		if err != nil {
			t.Fatal(err)
		}
		if p != c.wantPackets {
			t.Errorf("case %d (%s): packets = %d, want %d", i, c.arg.Kind, p, c.wantPackets)
		}
	}
	size, err := EncodedSize([]Arg{Int(1), Str("abc")})
	if err != nil {
		t.Fatal(err)
	}
	if size != HeaderBytes+2*PacketBytes {
		t.Fatalf("size = %d, want %d", size, HeaderBytes+2*PacketBytes)
	}
}

func TestEncodedSizeUnknownKind(t *testing.T) {
	if _, err := EncodedSize([]Arg{{Kind: ArgKind(99)}}); err == nil {
		t.Fatal("unknown kind accepted by EncodedSize")
	}
	if _, err := Encode([]Arg{{Kind: ArgKind(99)}}); err == nil {
		t.Fatal("unknown kind accepted by Encode")
	}
}

func TestDecodeCorruptInputs(t *testing.T) {
	good, err := Encode(sampleArgs())
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		{0},
		good[:5],
		good[:len(good)-3],
		append(append([]byte{}, good...), 0xFF),
		{0, 1, 99, 0, 0, 0, 1, 0}, // unknown kind
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
}

func TestArgKindString(t *testing.T) {
	kinds := []ArgKind{KindInteger, KindReal, KindLogical, KindCharacter, KindTaskID, KindWindow, KindIntArray, KindRealArray}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if ArgKind(0).String() == "" || ArgKind(200).String() == "" {
		t.Fatal("unknown kinds should still produce a diagnostic name")
	}
}

func TestEqualDistinguishesValues(t *testing.T) {
	if Equal(Int(1), Int(2)) {
		t.Error("Equal(1,2)")
	}
	if Equal(Int(1), Real(1)) {
		t.Error("different kinds compared equal")
	}
	if !Equal(Real(math.NaN()), Real(math.NaN())) {
		t.Error("NaN payloads should compare equal for round-trip checks")
	}
	if Equal(Ints([]int64{1, 2}), Ints([]int64{1, 3})) {
		t.Error("different int arrays compared equal")
	}
	if Equal(Ints([]int64{1, 2}), Ints([]int64{1})) {
		t.Error("different length arrays compared equal")
	}
	if Equal(Reals([]float64{1}), Reals([]float64{2})) {
		t.Error("different real arrays compared equal")
	}
	if !Equal(Str("a"), Str("a")) || Equal(Str("a"), Str("b")) {
		t.Error("string equality wrong")
	}
	if Equal(Logical(true), Logical(false)) {
		t.Error("logical equality wrong")
	}
	w1 := Window(WindowValue{ArrayID: 1})
	w2 := Window(WindowValue{ArrayID: 2})
	if Equal(w1, w2) {
		t.Error("window equality wrong")
	}
	t1 := TaskID(TaskIDValue{Cluster: 1})
	t2 := TaskID(TaskIDValue{Cluster: 2})
	if Equal(t1, t2) {
		t.Error("taskid equality wrong")
	}
}

// Property: scalar arguments always round-trip through Encode/Decode.
func TestQuickScalarRoundTrip(t *testing.T) {
	f := func(i int64, r float64, l bool, s string, c, sl, u int32) bool {
		args := []Arg{
			Int(i), Real(r), Logical(l), Str(s),
			TaskID(TaskIDValue{Cluster: c, Slot: sl, Unique: u}),
		}
		data, err := Encode(args)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil || len(got) != len(args) {
			return false
		}
		for i := range args {
			if !Equal(args[i], got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: arrays round-trip and the encoded size grows monotonically with
// the number of array elements.
func TestQuickArrayRoundTripAndSize(t *testing.T) {
	f := func(ints []int64, reals []float64) bool {
		args := []Arg{Ints(ints), Reals(reals)}
		data, err := Encode(args)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil || !Equal(got[0], args[0]) || !Equal(got[1], args[1]) {
			return false
		}
		small, err1 := EncodedSize([]Arg{Ints(ints)})
		larger, err2 := EncodedSize([]Arg{Ints(append([]int64{0, 0, 0, 0}, ints...))})
		return err1 == nil && err2 == nil && larger > small
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	args := sampleArgs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := Encode(args)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeTaskIDTrailingGarbage: a top-level TASKID argument whose payload
// is longer than 12 bytes used to decode successfully with the tail silently
// ignored; it must be rejected like every other fixed-size kind.
func TestDecodeTaskIDTrailingGarbage(t *testing.T) {
	good, err := Encode([]Arg{TaskID(TaskIDValue{Cluster: 1, Slot: 2, Unique: 3})})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(good); err != nil {
		t.Fatalf("well-formed TASKID rejected: %v", err)
	}
	// Grow the payload by 4 garbage bytes and patch the length field
	// (layout: uint16 count, uint8 kind, uint32 length, payload).
	bad := append(append([]byte{}, good...), 0xde, 0xad, 0xbe, 0xef)
	bad[3], bad[4], bad[5], bad[6] = 0, 0, 0, 16
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode with 16-byte TASKID payload = %v, want ErrCorrupt", err)
	}
	// A WINDOW payload embeds a 12-byte TASKID and must keep decoding.
	win, err := Encode([]Arg{Window(WindowValue{Owner: TaskIDValue{Cluster: 2, Slot: 1, Unique: 7}, ArrayID: 1})})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(win); err != nil {
		t.Fatalf("WINDOW with embedded TASKID rejected: %v", err)
	}
}

// TestEncodeTooManyArgs: more than 65535 arguments used to wrap the uint16
// count field, producing a buffer that decoded to the wrong argument list.
func TestEncodeTooManyArgs(t *testing.T) {
	args := make([]Arg, MaxArgs+1)
	for i := range args {
		args[i] = Logical(true)
	}
	if _, err := Encode(args); !errors.Is(err, ErrTooManyArgs) {
		t.Fatalf("Encode(%d args) = %v, want ErrTooManyArgs", len(args), err)
	}
	if _, err := Encode(args[:MaxArgs]); err != nil {
		t.Fatalf("Encode(%d args) should fit the count field: %v", MaxArgs, err)
	}
}
