package msgcodec

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Stream framing for the distributed node transport (internal/node): each
// frame is a 4-byte big-endian length prefix followed by that many payload
// bytes.  The payload is a node-protocol frame whose message bodies are the
// same msgcodec encoding the in-process routers move between heap shards —
// the wire format of Section 11's header-plus-packets model, carried over a
// socket instead of the FLEX/32 shared-memory bus.
//
// The length prefix is validated against a maximum BEFORE any allocation:
// a corrupt or malicious peer that sends an absurd length must produce
// ErrCorrupt, not a multi-gigabyte allocation that OOMs the node.

// MaxFrameBytes is the default upper bound on one frame's payload.  It
// comfortably holds the largest message the codec itself can produce for
// sane argument lists (the per-message cost model is HeaderBytes plus
// 32-byte packets) while keeping a hostile length prefix from reserving
// unbounded memory.
const MaxFrameBytes = 8 << 20

// frameLenBytes is the size of the length prefix.
const frameLenBytes = 4

// FrameOverhead is the number of wire bytes a frame adds beyond its payload
// (the length prefix); per-lane byte counters include it so they report what
// actually crossed the socket.
const FrameOverhead = frameLenBytes

// WriteFrame writes one length-prefixed frame.  Payloads larger than max
// (MaxFrameBytes when max <= 0) are rejected with ErrCorrupt: a frame the
// peer is guaranteed to refuse must fail at the sender, where the bug is.
func WriteFrame(w io.Writer, payload []byte, max int) error {
	if max <= 0 {
		max = MaxFrameBytes
	}
	if len(payload) > max {
		return fmt.Errorf("%w: frame payload %d bytes exceeds maximum %d", ErrCorrupt, len(payload), max)
	}
	var hdr [frameLenBytes]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, reusing buf when it is large
// enough.  A length prefix exceeding max (MaxFrameBytes when max <= 0) is
// rejected with ErrCorrupt before any payload-sized allocation happens.  On
// a clean end of stream it returns io.EOF; a stream that ends mid-frame
// returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, error) {
	if max <= 0 {
		max = MaxFrameBytes
	}
	var hdr [frameLenBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(max) {
		return nil, fmt.Errorf("%w: frame length prefix %d exceeds maximum %d", ErrCorrupt, n, max)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}
