package msgcodec

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Stream framing for the distributed node transport (internal/node): each
// frame is a 4-byte big-endian length prefix followed by that many payload
// bytes.  The payload is a node-protocol frame whose message bodies are the
// same msgcodec encoding the in-process routers move between heap shards —
// the wire format of Section 11's header-plus-packets model, carried over a
// socket instead of the FLEX/32 shared-memory bus.
//
// The length prefix is validated against a maximum BEFORE any allocation:
// a corrupt or malicious peer that sends an absurd length must produce
// ErrCorrupt, not a multi-gigabyte allocation that OOMs the node.

// MaxFrameBytes is the default upper bound on one frame's payload.  It
// comfortably holds the largest message the codec itself can produce for
// sane argument lists (the per-message cost model is HeaderBytes plus
// 32-byte packets) while keeping a hostile length prefix from reserving
// unbounded memory.
const MaxFrameBytes = 8 << 20

// frameLenBytes is the size of the length prefix.
const frameLenBytes = 4

// FrameOverhead is the number of wire bytes a frame adds beyond its payload
// (the length prefix); per-lane byte counters include it so they report what
// actually crossed the socket.
const FrameOverhead = frameLenBytes

// WriteFrame writes one length-prefixed frame.  Payloads larger than max
// (MaxFrameBytes when max <= 0) are rejected with ErrCorrupt: a frame the
// peer is guaranteed to refuse must fail at the sender, where the bug is.
func WriteFrame(w io.Writer, payload []byte, max int) error {
	if max <= 0 {
		max = MaxFrameBytes
	}
	if len(payload) > max {
		return fmt.Errorf("%w: frame payload %d bytes exceeds maximum %d", ErrCorrupt, len(payload), max)
	}
	var hdr [frameLenBytes]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Batch framing.  A batch is simply the concatenation of length-prefixed
// frames in one contiguous buffer: the node transport's writer packs many
// frames into a single buffer and hands it to the kernel in one write, and
// the byte stream stays identical to per-frame writes — a receiver using
// ReadFrame cannot tell coalesced traffic from unbatched traffic.  The
// helpers below are the two halves of the batch path: BeginFrame/EndFrame
// let a sender encode a payload DIRECTLY into the batch buffer (no
// intermediate per-frame allocation — the payload bytes are copied exactly
// once, from their source into the batch), and NextFrame splits a batch
// buffer back into payloads.

// AppendFrame appends one length-prefixed frame holding payload to the batch
// buffer and returns the extended buffer.  Oversized payloads are rejected
// with ErrCorrupt, leaving batch unmodified.
func AppendFrame(batch, payload []byte, max int) ([]byte, error) {
	if max <= 0 {
		max = MaxFrameBytes
	}
	if len(payload) > max {
		return batch, fmt.Errorf("%w: frame payload %d bytes exceeds maximum %d", ErrCorrupt, len(payload), max)
	}
	batch = binary.BigEndian.AppendUint32(batch, uint32(len(payload)))
	return append(batch, payload...), nil
}

// BeginFrame reserves a length prefix in the batch buffer and returns the
// extended buffer plus the payload start offset.  The caller appends the
// payload bytes and then calls EndFrame with the same offset to backfill the
// prefix.
func BeginFrame(batch []byte) ([]byte, int) {
	batch = append(batch, 0, 0, 0, 0)
	return batch, len(batch)
}

// EndFrame backfills the length prefix reserved by BeginFrame for the
// payload written at batch[payloadStart:].  A payload larger than max
// (MaxFrameBytes when max <= 0) is rejected with ErrCorrupt and the buffer
// is truncated back to the frame start, dropping the partial frame so the
// batch stays well-formed.
func EndFrame(batch []byte, payloadStart int, max int) ([]byte, error) {
	if max <= 0 {
		max = MaxFrameBytes
	}
	n := len(batch) - payloadStart
	if n < 0 || payloadStart < frameLenBytes {
		return batch, fmt.Errorf("%w: EndFrame offset %d outside batch of %d bytes", ErrCorrupt, payloadStart, len(batch))
	}
	if n > max {
		return batch[:payloadStart-frameLenBytes], fmt.Errorf("%w: frame payload %d bytes exceeds maximum %d", ErrCorrupt, n, max)
	}
	binary.BigEndian.PutUint32(batch[payloadStart-frameLenBytes:payloadStart], uint32(n))
	return batch, nil
}

// NextFrame splits the first length-prefixed frame off a batch buffer,
// returning its payload (aliasing batch) and the remaining bytes.  An empty
// batch returns io.EOF; a batch that ends mid-frame or carries an oversized
// prefix returns ErrCorrupt (truncation is corruption here — the batch was
// materialised in memory by a peer, not streamed).
func NextFrame(batch []byte, max int) (payload, rest []byte, err error) {
	if max <= 0 {
		max = MaxFrameBytes
	}
	if len(batch) == 0 {
		return nil, nil, io.EOF
	}
	if len(batch) < frameLenBytes {
		return nil, nil, fmt.Errorf("%w: batch ends inside a length prefix (%d bytes)", ErrCorrupt, len(batch))
	}
	n := binary.BigEndian.Uint32(batch)
	if n > uint32(max) {
		return nil, nil, fmt.Errorf("%w: frame length prefix %d exceeds maximum %d", ErrCorrupt, n, max)
	}
	if uint32(len(batch)-frameLenBytes) < n {
		return nil, nil, fmt.Errorf("%w: frame length prefix %d but only %d payload bytes in batch", ErrCorrupt, n, len(batch)-frameLenBytes)
	}
	return batch[frameLenBytes : frameLenBytes+int(n)], batch[frameLenBytes+int(n):], nil
}

// ReadFrame reads one length-prefixed frame, reusing buf when it is large
// enough.  A length prefix exceeding max (MaxFrameBytes when max <= 0) is
// rejected with ErrCorrupt before any payload-sized allocation happens.  On
// a clean end of stream it returns io.EOF; a stream that ends mid-frame
// returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, error) {
	if max <= 0 {
		max = MaxFrameBytes
	}
	var hdr [frameLenBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(max) {
		return nil, fmt.Errorf("%w: frame length prefix %d exceeds maximum %d", ErrCorrupt, n, max)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}
