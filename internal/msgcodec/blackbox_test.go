package msgcodec

import (
	"bytes"
	"strings"
	"testing"
)

func sampleBlackboxEvents() []BlackboxEvent {
	return []BlackboxEvent{
		{Seq: 1, TS: 1000, Edge: 0x0001000000000001, Kind: EvSend, Node: 0, Shard: 1, A: 1, B: 2},
		{Seq: 2, TS: 1500, Edge: 0x0001000000000001, Kind: EvAccept, Node: 1, Shard: 0, A: 2, B: 1},
		{Seq: 3, TS: 2000, Edge: 0, Kind: EvCheckpoint, Node: 1, Shard: 0, A: 1, B: 7},
		{Seq: 4, TS: -5, Edge: 0, Kind: EvLimit, Node: 0, Shard: 3, A: 2, B: 1 << 30},
		{Seq: 5, TS: 2500, Edge: 0, Kind: 200, Node: 2, Shard: 0, A: -1, B: -2},
	}
}

func TestBlackboxRoundTrip(t *testing.T) {
	events := sampleBlackboxEvents()
	blob, err := EncodeBlackbox(3, 123456789, events)
	if err != nil {
		t.Fatal(err)
	}
	node, ts, back, err := DecodeBlackbox(blob)
	if err != nil {
		t.Fatal(err)
	}
	if node != 3 || ts != 123456789 {
		t.Fatalf("header round trip: node=%d ts=%d", node, ts)
	}
	if len(back) != len(events) {
		t.Fatalf("event count %d -> %d", len(events), len(back))
	}
	for i := range events {
		if events[i] != back[i] {
			t.Fatalf("event %d changed: %+v -> %+v", i, events[i], back[i])
		}
	}
}

func TestBlackboxEmptyDump(t *testing.T) {
	blob, err := EncodeBlackbox(0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	node, ts, events, err := DecodeBlackbox(blob)
	if err != nil || node != 0 || ts != 0 || len(events) != 0 {
		t.Fatalf("empty dump: node=%d ts=%d events=%d err=%v", node, ts, len(events), err)
	}
}

func TestBlackboxRejectsCorrupt(t *testing.T) {
	blob, err := EncodeBlackbox(1, 42, sampleBlackboxEvents())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   blob[:10],
		"bad magic":      append([]byte{0, 0, 0, 0}, blob[4:]...),
		"bad version":    append(append([]byte{}, blob[:4]...), append([]byte{0xFF, 0xFF}, blob[6:]...)...),
		"truncated body": blob[:len(blob)-3],
		"trailing bytes": append(append([]byte{}, blob...), 0),
	}
	// A forged huge count must be rejected before it sizes an allocation.
	forged := append([]byte{}, blob...)
	forged[18], forged[19], forged[20], forged[21] = 0xFF, 0xFF, 0xFF, 0xFF
	cases["forged count"] = forged
	for name, data := range cases {
		if _, _, _, err := DecodeBlackbox(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestEventKindNames(t *testing.T) {
	for kind, want := range map[uint8]string{
		EvSend: "send", EvAccept: "accept", EvKill: "kill",
		EvCreditStall: "credit-stall", EvCheckpoint: "checkpoint",
		EvLimit: "limit", EvHeartbeatMiss: "heartbeat-miss",
	} {
		if got := EventKindName(kind); got != want {
			t.Errorf("EventKindName(%d) = %q, want %q", kind, got, want)
		}
	}
	if got := EventKindName(250); !strings.Contains(got, "250") {
		t.Errorf("unknown kind rendered as %q", got)
	}
}

// FuzzBlackbox is the dump-decode round-trip target: DecodeBlackbox must
// never panic on arbitrary bytes, and any dump it accepts must re-encode to
// the identical container (the format is canonical).
func FuzzBlackbox(f *testing.F) {
	if seed, err := EncodeBlackbox(2, 99, sampleBlackboxEvents()); err == nil {
		f.Add(seed)
	}
	if seed, err := EncodeBlackbox(0, 0, nil); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x69, 0x42, 0x62, 0, 1, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		node, ts, events, err := DecodeBlackbox(data)
		if err != nil {
			return // corrupt input rejected without panicking: fine
		}
		blob, err := EncodeBlackbox(node, ts, events)
		if err != nil {
			t.Fatalf("Encode of decoded dump failed: %v", err)
		}
		if !bytes.Equal(blob, data) {
			t.Fatalf("decode+encode changed the dump: %d -> %d bytes", len(data), len(blob))
		}
	})
}
