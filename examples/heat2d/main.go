// heat2d: parallel Jacobi iteration on a 2-D temperature grid using the
// Section 8 "window" pattern for parallel data partitioning.
//
// A host task owns the grid as a file-resident array (the file controller is
// its owner, as for "large arrays on secondary storage").  The host
// partitions the interior into horizontal bands by creating windows, sends
// one window to each solver task, and the solvers iterate: read the band plus
// its halo rows through the window machinery, relax, and write the band back.
// Only the band data ever moves — the host never copies the array through
// itself, which is exactly the point of windows.
//
// Run with:
//
//	go run ./examples/heat2d [-n 64] [-workers 4] [-iters 50]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	pisces "repro"
)

func main() {
	n := flag.Int("n", 64, "grid size (n x n)")
	workers := flag.Int("workers", 4, "number of solver tasks")
	iters := flag.Int("iters", 50, "Jacobi iterations")
	flag.Parse()

	cfg := pisces.SimpleConfiguration(4, 4)
	vm, err := pisces.NewVM(cfg, pisces.Options{UserOutput: os.Stdout})
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	defer vm.Shutdown()

	// The grid lives in a file-resident array owned by the file controller;
	// boundary conditions: top edge held at 100 degrees, the rest at 0.
	grid, err := vm.CreateFileArray("temperature", *n, *n)
	if err != nil {
		log.Fatalf("create grid: %v", err)
	}
	arr, _ := vm.FileArray("temperature")
	for c := 1; c <= *n; c++ {
		arr.Set(1, c, 100)
	}

	registerSolver(vm, *n, *iters)
	registerHost(vm, grid, *n, *workers, *iters)

	if _, err := vm.Run("host", pisces.OnCluster(1)); err != nil {
		log.Fatalf("run: %v", err)
	}
	vm.WaitIdle()
	vm.FlushUserOutput()

	// Report the final centre temperature and the window traffic.
	centre, _ := arr.Get(*n/2, *n/2)
	ops, bytes := vm.WindowTraffic()
	fmt.Printf("grid %dx%d, %d workers, %d iterations\n", *n, *n, *workers, *iters)
	fmt.Printf("centre temperature %.4f\n", centre)
	fmt.Printf("window traffic: %d operations, %d bytes moved\n", ops, bytes)
}

// registerHost registers the host tasktype: partition the interior rows into
// bands, hand each band's window to a solver, and wait for completion.
func registerHost(vm *pisces.VM, grid pisces.Window, n, workers, iters int) {
	vm.Register("host", func(t *pisces.Task) {
		// Interior rows 2..n-1 are partitioned; each solver also reads one
		// halo row above and below its band.
		interior, err := grid.Shrink(pisces.NewRect(2, n-1, 1, n))
		if err != nil {
			t.Printf("host: %v\n", err)
			return
		}
		bands, err := interior.RowBands(workers)
		if err != nil {
			t.Printf("host: %v\n", err)
			return
		}
		for i, band := range bands {
			if err := t.Initiate(pisces.Any(), "solver", pisces.Win(band), pisces.Int(int64(i))); err != nil {
				t.Printf("host initiate: %v\n", err)
				return
			}
		}
		res, err := t.AcceptN(len(bands), "band-done")
		if err != nil {
			t.Printf("host accept: %v\n", err)
			return
		}
		var maxResidual float64
		for _, m := range res.ByType["band-done"] {
			if r := pisces.MustReal(m.Arg(0)); r > maxResidual {
				maxResidual = r
			}
		}
		t.Printf("host: all %d bands relaxed, max final residual %.6f\n", len(bands), maxResidual)
	})
}

// registerSolver registers the solver tasktype: Jacobi-relax one band.
func registerSolver(vm *pisces.VM, n, iters int) {
	vm.Register("solver", func(t *pisces.Task) {
		band := pisces.MustWin(t.Arg(0))

		// The halo window covers one extra row above and below the band.
		halo, err := pisces.Window{
			Owner:   band.Owner,
			ArrayID: band.ArrayID,
			Region:  pisces.WholeRect(n, n),
		}.Shrink(pisces.NewRect(band.Region.Row1-1, band.Region.Row2+1, 1, n))
		if err != nil {
			t.Printf("solver %s: %v\n", t.ID(), err)
			return
		}

		rows, cols := halo.Rows(), halo.Cols()
		var residual float64
		for iter := 0; iter < iters; iter++ {
			// Read the band plus halo, relax the interior of the band,
			// write the band back.
			data, err := t.ReadWindow(halo)
			if err != nil {
				t.Printf("solver %s read: %v\n", t.ID(), err)
				return
			}
			out := make([]float64, band.Size())
			residual = 0
			for r := 1; r < rows-1; r++ {
				for c := 0; c < cols; c++ {
					idx := r*cols + c
					if c == 0 || c == cols-1 {
						out[(r-1)*cols+c] = data[idx] // boundary columns fixed
						continue
					}
					v := 0.25 * (data[idx-cols] + data[idx+cols] + data[idx-1] + data[idx+1])
					out[(r-1)*cols+c] = v
					if d := math.Abs(v - data[idx]); d > residual {
						residual = d
					}
				}
			}
			if err := t.WriteWindow(band, out); err != nil {
				t.Printf("solver %s write: %v\n", t.ID(), err)
				return
			}
			t.Charge(int64(band.Size())) // model the relaxation work
		}
		if err := t.SendParent("band-done", pisces.Real(residual)); err != nil {
			t.Printf("solver %s: %v\n", t.ID(), err)
		}
	})
}
