// Quickstart: boot a two-cluster PISCES 2 virtual machine, initiate a small
// dynamic set of tasks that talk to each other with asynchronous messages,
// and print what happened.
//
// This is the "hello world" of the environment: a coordinator task spreads
// worker tasks over the clusters with ON ... INITIATE, each worker reports
// its partial result TO PARENT, and the coordinator ACCEPTs the replies.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	pisces "repro"
)

func main() {
	// 1. Choose a configuration: two clusters, four user-task slots each.
	//    (This is the "mapping of the virtual machine onto the hardware" the
	//    programmer controls before each run.)
	cfg := pisces.SimpleConfiguration(2, 4)

	// 2. Boot the virtual machine on the simulated FLEX/32.
	vm, err := pisces.NewVM(cfg, pisces.Options{UserOutput: os.Stdout})
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	defer vm.Shutdown()

	// 3. Register tasktypes.  A worker squares its argument and reports back.
	vm.Register("worker", func(t *pisces.Task) {
		n := pisces.MustInt(t.Arg(0))
		if err := t.SendParent("result", pisces.Int(n*n)); err != nil {
			t.Printf("worker %s: %v\n", t.ID(), err)
		}
	})

	// The coordinator initiates one worker per input value, spreading them
	// over the clusters, then accepts all the replies.
	const inputs = 6
	vm.Register("coordinator", func(t *pisces.Task) {
		for i := 1; i <= inputs; i++ {
			placement := pisces.Same()
			if i%2 == 0 {
				placement = pisces.Other()
			}
			if err := t.Initiate(placement, "worker", pisces.Int(int64(i))); err != nil {
				t.Printf("initiate: %v\n", err)
			}
		}
		res, err := t.AcceptN(inputs, "result")
		if err != nil {
			t.Printf("accept: %v\n", err)
			return
		}
		sum := int64(0)
		for _, m := range res.ByType["result"] {
			sum += pisces.MustInt(m.Arg(0))
		}
		t.Printf("sum of squares 1..%d = %d (from %d workers)\n", inputs, sum, res.Count("result"))
	})

	// 4. Initiate the top-level task from the execution environment and wait.
	if _, err := vm.Run("coordinator", pisces.OnCluster(1)); err != nil {
		log.Fatalf("run: %v", err)
	}
	vm.WaitIdle()
	vm.FlushUserOutput()

	// 5. Show what the run did.
	st := vm.Stats()
	fmt.Printf("\ntasks initiated: %d   messages sent: %d   accepted: %d\n",
		st.TasksInitiated, st.MessagesSent, st.MessagesAccepted)
	storage := vm.SystemStorage()
	fmt.Printf("PISCES system uses %.2f%% of each PE's local memory and %.3f%% of shared memory for tables\n",
		storage.LocalPercent, storage.TablePercent)
}
