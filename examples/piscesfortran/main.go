// piscesfortran: the Section 10 tool chain.  This example reads the Pisces
// Fortran program shipped next to it (program.pf), lists the tasktypes the
// preprocessor finds, and prints the standard Fortran 77 it generates — the
// text the Unix f77 compiler would compile against the PISCES run-time
// library on the real FLEX/32.
//
// Run with:
//
//	go run ./examples/piscesfortran [-src examples/piscesfortran/program.pf]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/pfc"
)

func main() {
	src := flag.String("src", "examples/piscesfortran/program.pf", "Pisces Fortran source file")
	flag.Parse()

	text, err := os.ReadFile(*src)
	if err != nil {
		log.Fatalf("read source: %v", err)
	}
	res, err := pfc.Preprocess(string(text), pfc.Options{KeepComments: true})
	if err != nil {
		log.Fatalf("preprocess: %v", err)
	}

	fmt.Println("tasktypes found:")
	for _, tt := range res.Program.TaskTypes {
		fmt.Printf("  %-10s params=%v handlers=%v signals=%v force=%v shared-commons=%d\n",
			tt.Name, tt.Params, tt.Handlers, tt.Signals, tt.UsesForce, len(tt.SharedCommons))
	}
	fmt.Println()
	fmt.Println("generated Fortran 77 with PISCES run-time calls:")
	fmt.Println("------------------------------------------------")
	fmt.Print(res.Fortran)
}
