// structural: the Section 14 target application in miniature.  The paper's
// planned first real use of PISCES 2 was "porting a large existing finite
// element/structural analysis code to the FLEX ... with a minimum of effort".
// This example stands in for that port with a plane-stress-style relaxation:
// the displacement field of a clamped plate under a point load is solved by
// successive over-relaxation, parallelised the way the paper intends such
// ports to be parallelised —
//
//   - the global stiffness/displacement arrays stay where they are (owned by
//     the analysis task), and
//   - the sweep over the mesh is parallelised with a FORCESPLIT and PRESCHED
//     loops over mesh rows, with a BARRIER between red/black half-sweeps and
//     a CRITICAL section accumulating the global residual in SHARED COMMON.
//
// Run with:
//
//	go run ./examples/structural [-n 80] [-iters 200] [-forcepes 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	pisces "repro"
)

func main() {
	n := flag.Int("n", 80, "mesh dimension (n x n nodes)")
	iters := flag.Int("iters", 200, "relaxation sweeps")
	forcePEs := flag.Int("forcepes", 8, "secondary PEs running force members")
	flag.Parse()

	cfg := pisces.SimpleConfiguration(1, 2)
	if *forcePEs > 0 {
		pes := make([]int, 0, *forcePEs)
		for pe := 7; pe < 7+*forcePEs && pe <= 20; pe++ {
			pes = append(pes, pe)
		}
		cfg = cfg.WithForces(1, pes...)
	}
	vm, err := pisces.NewVM(cfg, pisces.Options{UserOutput: os.Stdout})
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	defer vm.Shutdown()

	size, sweeps := *n, *iters
	vm.Register("analysis", func(t *pisces.Task) {
		// Displacement field and load vector.  The plate is clamped on all
		// edges; a unit point load is applied at the centre node.
		u := make([]float64, size*size)
		f := make([]float64, size*size)
		f[(size/2)*size+size/2] = 1.0

		common, err := t.NewSharedCommon("residual", 1, 0)
		if err != nil {
			t.Printf("analysis: %v\n", err)
			return
		}
		lock, err := t.NewLock("residual-lock")
		if err != nil {
			t.Printf("analysis: %v\n", err)
			return
		}

		const omega = 1.7 // over-relaxation factor
		machine := t.VM().Machine()
		start := machine.MaxTicks()

		err = t.ForceSplit(func(m *pisces.ForceMember) {
			for sweep := 0; sweep < sweeps; sweep++ {
				// Red/black half-sweeps so members never update neighbouring
				// nodes concurrently.
				for colour := 0; colour < 2; colour++ {
					local := 0.0
					m.Presched(2, size-1, 1, func(row int) {
						for col := 2; col < size; col++ {
							if (row+col)%2 != colour {
								continue
							}
							idx := (row-1)*size + (col - 1)
							r := f[idx] + u[idx-size] + u[idx+size] + u[idx-1] + u[idx+1] - 4*u[idx]
							u[idx] += omega * r / 4
							if a := math.Abs(r); a > local {
								local = a
							}
						}
						m.Charge(int64(size))
					})
					m.Critical(lock, func() {
						if local > common.Real(0) {
							common.SetReal(0, local)
						}
					})
					m.Barrier(nil)
				}
				// The primary resets the residual tracker between sweeps
				// (keeping the value of the final sweep at the end).
				if sweep < sweeps-1 {
					m.Barrier(func() { common.SetReal(0, 0) })
				}
			}
		})
		if err != nil {
			t.Printf("analysis: %v\n", err)
			return
		}

		elapsed := machine.MaxTicks() - start
		centre := u[(size/2)*size+size/2]
		t.Printf("structural analysis %dx%d, %d sweeps, force of %d: centre displacement %.6f, residual %.3e, %d ticks\n",
			size, size, sweeps, cfg.Cluster(1).ForceSize(), centre, common.Real(0), elapsed)
		if err := t.SendParent("analysis-done", pisces.Real(centre)); err != nil {
			t.Printf("analysis: %v\n", err)
		}
	})

	if _, err := vm.Run("analysis", pisces.OnCluster(1)); err != nil {
		log.Fatalf("run: %v", err)
	}
	vm.WaitIdle()
	vm.FlushUserOutput()
	fmt.Printf("simulated machine: %d total ticks across %d PEs\n",
		vm.Machine().TotalTicks(), vm.Machine().NumPE())
}
