// matmul: force-based matrix multiplication, the Section 7 programming model.
//
// One task owns the problem.  It executes a FORCESPLIT, after which every
// force member computes a share of the result rows — PRESCHED for a regular
// partition and SELFSCHED for dynamic load balancing — synchronising with a
// BARRIER between phases and accumulating a checksum in a SHARED COMMON block
// under a CRITICAL section.  The same program text runs unchanged whatever
// force size the configuration provides, which is the central property of the
// force construct.
//
// Run with:
//
//	go run ./examples/matmul [-n 96] [-forcepes 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	pisces "repro"
)

func main() {
	n := flag.Int("n", 96, "matrix dimension")
	forcePEs := flag.Int("forcepes", 6, "number of secondary PEs to run force members (0 = no splitting)")
	flag.Parse()

	// One cluster on PE 3; secondary PEs 7, 8, ... run the force members.
	cfg := pisces.SimpleConfiguration(1, 2)
	if *forcePEs > 0 {
		pes := make([]int, 0, *forcePEs)
		for pe := 7; pe < 7+*forcePEs && pe <= 20; pe++ {
			pes = append(pes, pe)
		}
		cfg = cfg.WithForces(1, pes...)
	}

	vm, err := pisces.NewVM(cfg, pisces.Options{UserOutput: os.Stdout})
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	defer vm.Shutdown()

	size := *n
	vm.Register("matmul", func(t *pisces.Task) {
		// Operand matrices are ordinary task-local data; the checksum lives
		// in SHARED COMMON so every force member can add to it.
		a := make([]float64, size*size)
		b := make([]float64, size*size)
		c := make([]float64, size*size)
		for i := range a {
			a[i] = float64(i%7) * 0.5
			b[i] = float64(i%5) * 0.25
		}
		common, err := t.NewSharedCommon("checksum", 1, 0)
		if err != nil {
			t.Printf("matmul: %v\n", err)
			return
		}
		lock, err := t.NewLock("checklk")
		if err != nil {
			t.Printf("matmul: %v\n", err)
			return
		}

		machine := t.VM().Machine()
		startTicks := machine.MaxTicks()

		err = t.ForceSplit(func(m *pisces.ForceMember) {
			// Phase 1: PRESCHED over result rows.
			m.Presched(1, size, 1, func(row int) {
				computeRow(a, b, c, size, row-1)
				m.Charge(int64(size)) // one tick per inner row pass
			})
			// Every member reports its share at the barrier; the primary
			// resets the checksum before phase 2.
			m.Barrier(func() { common.SetReal(0, 0) })

			// Phase 2: SELFSCHED over rows for the checksum — dynamic load
			// balancing over deliberately irregular work.
			local := 0.0
			m.Selfsched(1, size, 1, func(row int) {
				s := 0.0
				for k := 0; k < size; k++ {
					s += c[(row-1)*size+k]
				}
				local += s
				m.Charge(int64(size % (row + 1)))
			})
			m.Critical(lock, func() { common.SetReal(0, common.Real(0)+local) })
			m.Barrier(nil)
		})
		if err != nil {
			t.Printf("matmul: %v\n", err)
			return
		}

		elapsed := machine.MaxTicks() - startTicks
		t.Printf("matmul %dx%d with a force of %d members: checksum %.2f, %d simulated ticks\n",
			size, size, 1+len(cfg.Cluster(1).SecondaryPEs), common.Real(0), elapsed)
	})

	if _, err := vm.Run("matmul", pisces.OnCluster(1)); err != nil {
		log.Fatalf("run: %v", err)
	}
	vm.WaitIdle()
	vm.FlushUserOutput()
	fmt.Printf("force size from configuration: %d member(s)\n", cfg.Cluster(1).ForceSize())
}

// computeRow computes one row of C = A*B.
func computeRow(a, b, c []float64, n, row int) {
	for j := 0; j < n; j++ {
		s := 0.0
		for k := 0; k < n; k++ {
			s += a[row*n+k] * b[k*n+j]
		}
		c[row*n+j] = s
	}
}
