// pipeline: a dynamic communication topology built from TASKID values, the
// Section 6 programming model.
//
// The paper explains that the initial topology is a root-directed tree (each
// task only knows its parent), and that programs grow richer topologies by
// exchanging TASKID values in messages.  This example builds a processing
// pipeline that way: a source task initiates the stage tasks, which each
// report their taskid to the source; the source then tells every stage who
// its successor is, creating a chain that did not exist at initiation time.
// Work items then flow source -> stage 1 -> ... -> stage N -> sink, each
// stage applying its own transformation, and the sink reports the results to
// the user.
//
// Run with:
//
//	go run ./examples/pipeline [-stages 4] [-items 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	pisces "repro"
)

func main() {
	stages := flag.Int("stages", 4, "number of pipeline stages")
	items := flag.Int("items", 10, "number of work items to push through")
	flag.Parse()

	cfg := pisces.SimpleConfiguration(3, 4)
	vm, err := pisces.NewVM(cfg, pisces.Options{UserOutput: os.Stdout})
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	defer vm.Shutdown()

	registerStage(vm)
	registerSink(vm)
	registerSource(vm, *stages, *items)

	if _, err := vm.Run("source", pisces.OnCluster(1)); err != nil {
		log.Fatalf("run: %v", err)
	}
	vm.WaitIdle()
	vm.FlushUserOutput()

	st := vm.Stats()
	fmt.Printf("pipeline of %d stages processed %d items: %d tasks, %d messages\n",
		*stages, *items, st.TasksInitiated, st.MessagesSent)
}

// registerSource builds the pipeline and pushes the work items through it.
func registerSource(vm *pisces.VM, stages, items int) {
	vm.Register("source", func(t *pisces.Task) {
		// Initiate the stages and the sink; they report their ids back, which
		// is how the source learns the taskids it needs.
		for i := 1; i <= stages; i++ {
			if err := t.Initiate(pisces.Any(), "stage", pisces.Int(int64(i))); err != nil {
				t.Printf("source: %v\n", err)
				return
			}
		}
		if err := t.Initiate(pisces.Other(), "sink", pisces.Int(int64(items))); err != nil {
			t.Printf("source: %v\n", err)
			return
		}

		stageIDs := make([]pisces.TaskID, stages)
		var sinkID pisces.TaskID
		res, err := t.Accept(pisces.AcceptSpec{
			Types: []pisces.TypeCount{
				{Type: "stage-ready", Count: stages},
				{Type: "sink-ready", Count: 1},
			},
		})
		if err != nil {
			t.Printf("source accept: %v\n", err)
			return
		}
		for _, m := range res.ByType["stage-ready"] {
			idx := pisces.MustInt(m.Arg(0))
			stageIDs[idx-1] = m.Sender
		}
		sinkID = res.ByType["sink-ready"][0].Sender

		// Wire the topology: stage i forwards to stage i+1, the last stage to
		// the sink.  The successor taskid travels inside an ordinary message.
		for i := 0; i < stages; i++ {
			next := sinkID
			if i+1 < stages {
				next = stageIDs[i+1]
			}
			if err := t.Send(stageIDs[i], "successor", pisces.ID(next)); err != nil {
				t.Printf("source: %v\n", err)
				return
			}
		}

		// Push the work items into the head of the pipeline, then a single
		// flush that travels down the chain behind them (in-queues preserve
		// arrival order, so the flush cannot overtake the items).
		for item := 1; item <= items; item++ {
			if err := t.Send(stageIDs[0], "item", pisces.Int(int64(item))); err != nil {
				t.Printf("source: %v\n", err)
			}
		}
		if err := t.Send(stageIDs[0], "flush"); err != nil {
			t.Printf("source: %v\n", err)
		}
	})
}

// registerStage registers the pipeline stage: learn the successor, then
// transform and forward items until flushed.
func registerStage(vm *pisces.VM) {
	vm.Register("stage", func(t *pisces.Task) {
		index := pisces.MustInt(t.Arg(0))
		if err := t.SendParent("stage-ready", pisces.Int(index)); err != nil {
			t.Printf("stage %d: %v\n", index, err)
			return
		}
		m, err := t.AcceptOne("successor")
		if err != nil {
			t.Printf("stage %d: %v\n", index, err)
			return
		}
		next := pisces.MustID(m.Arg(0))

		for {
			m, err := t.AcceptOne("item", "flush")
			if err != nil {
				t.Printf("stage %d: %v\n", index, err)
				return
			}
			if m.Type == "flush" {
				// Propagate the flush downstream and retire this stage.
				if err := t.Send(next, "flush"); err != nil {
					t.Printf("stage %d flush: %v\n", index, err)
				}
				return
			}
			v := pisces.MustInt(m.Arg(0))
			t.Charge(20)
			if err := t.Send(next, "item", pisces.Int(v*10+index)); err != nil {
				t.Printf("stage %d: %v\n", index, err)
				return
			}
		}
	})
}

// registerSink registers the pipeline sink: collect the processed items.
func registerSink(vm *pisces.VM) {
	vm.Register("sink", func(t *pisces.Task) {
		want := int(pisces.MustInt(t.Arg(0)))
		if err := t.SendParent("sink-ready"); err != nil {
			t.Printf("sink: %v\n", err)
			return
		}
		got := 0
		var last int64
		for {
			m, err := t.AcceptOne("item", "flush")
			if err != nil {
				t.Printf("sink: %v\n", err)
				return
			}
			if m.Type == "flush" {
				break
			}
			last = pisces.MustInt(m.Arg(0))
			got++
		}
		t.Printf("sink received %d of %d item(s); last value %d\n", got, want, last)
	})
}
