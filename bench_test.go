// Benchmarks that regenerate the paper's evaluation artifacts (one benchmark
// per table/figure; see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results).  Benchmarks report the headline quantity of each
// experiment through b.ReportMetric so `go test -bench=.` reproduces the
// numbers without a separate harness.
package pisces_test

import (
	"io"
	"testing"
	"time"

	pisces "repro"
	"repro/internal/experiments"
)

// BenchmarkE1StorageOverhead regenerates the Section 13 storage-overhead
// table: PISCES system share of local memory, system-table share of shared
// memory, and message-heap recovery.
func BenchmarkE1StorageOverhead(b *testing.B) {
	b.ReportAllocs()
	var local, table float64
	var recovered int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE1(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		local = res.LocalPercent
		table = res.TablePercent
		recovered = res.HeapAfterBurst
	}
	b.ReportMetric(local, "local-mem-%")
	b.ReportMetric(table, "shared-tables-%")
	b.ReportMetric(float64(recovered), "heap-bytes-after-accept")
}

// BenchmarkE2Figure1 regenerates Figure 1 (the virtual-machine organisation
// rendering) from a live system.
func BenchmarkE2Figure1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunE2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3MappingVariants regenerates the Section 9 worked example,
// including the live FORCESPLIT member counts for the three mapping variants
// (no secondaries, 5 secondaries, 9 shared secondaries).
func BenchmarkE3MappingVariants(b *testing.B) {
	b.ReportAllocs()
	var mp8 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE3(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		mp8 = float64(res.MaxMultiprogramming[7])
	}
	b.ReportMetric(mp8, "max-multiprog-pe7")
}

// BenchmarkE4ForcePresched and BenchmarkE4ForceSelfsched regenerate the force
// performance series (the timing measurements the paper defers): speedup of
// the regular and irregular workloads at the largest force size.
func BenchmarkE4ForcePresched(b *testing.B) {
	b.ReportAllocs()
	benchE4(b, "PRESCHED")
}

// BenchmarkE4ForceSelfsched is the SELFSCHED half of the E4 series.
func BenchmarkE4ForceSelfsched(b *testing.B) {
	b.ReportAllocs()
	benchE4(b, "SELFSCHED")
}

func benchE4(b *testing.B, discipline string) {
	p := experiments.E4Params{
		RegularIterations:   1024,
		RegularCost:         8,
		IrregularIterations: 128,
		IrregularMaxCost:    256,
		ForceSizes:          []int{1, 8},
	}
	var regular, irregular float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE4(io.Discard, p)
		if err != nil {
			b.Fatal(err)
		}
		regular = res.Best(discipline, "regular")
		irregular = res.Best(discipline, "irregular")
	}
	b.ReportMetric(regular, "speedup-regular-8pe")
	b.ReportMetric(irregular, "speedup-irregular-8pe")
}

// BenchmarkE5MessagePingPong measures the message-system round trip of the
// E5 table.
func BenchmarkE5MessagePingPong(b *testing.B) {
	b.ReportAllocs()
	vm, err := pisces.NewVM(pisces.SimpleConfiguration(2, 2), pisces.Options{AcceptTimeout: 30 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer vm.Shutdown()

	ready := make(chan pisces.TaskID, 1)
	vm.Register("echo", func(t *pisces.Task) {
		ready <- t.ID()
		for {
			m, err := t.AcceptOne("ping", "stop")
			if err != nil || m.Type == "stop" {
				return
			}
			if err := t.SendSender("pong"); err != nil {
				return
			}
		}
	})
	done := make(chan struct{})
	vm.Register("pinger", func(t *pisces.Task) {
		to := pisces.MustID(t.Arg(0))
		for i := 0; i < b.N; i++ {
			if err := t.Send(to, "ping"); err != nil {
				b.Error(err)
				break
			}
			if _, err := t.AcceptOne("pong"); err != nil {
				b.Error(err)
				break
			}
		}
		_ = t.Send(to, "stop")
		close(done)
	})
	echoID, err := vm.Initiate("echo", pisces.OnCluster(1))
	if err != nil {
		b.Fatal(err)
	}
	<-ready
	b.ResetTimer()
	if _, err := vm.Initiate("pinger", pisces.OnCluster(2), pisces.ID(echoID)); err != nil {
		b.Fatal(err)
	}
	<-done
}

// BenchmarkE5MessageFanIn measures many-to-one delivery from the E5 table.
func BenchmarkE5MessageFanIn(b *testing.B) {
	b.ReportAllocs()
	p := experiments.DefaultE5Params()
	p.PingPongRounds = 50
	p.FanInSenders = 4
	p.FanInMessages = 50
	p.QueueGrowthMessages = 64
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE5(io.Discard, p)
		if err != nil {
			b.Fatal(err)
		}
		rate = res.FanInMessagesPerSec
	}
	b.ReportMetric(rate, "fanin-msgs/s")
}

// BenchmarkCrossClusterFanIn measures inter-cluster message throughput on
// the sharded heap: four senders, each in its own cluster, fan into one
// collector on cluster 1, so every data message is encoded into the sender's
// heap shard, routed, and decoded into the collector's shard by the
// destination router.  One benchmark op is a round of 4x64 routed messages;
// the headline metric is routed messages per second.
func BenchmarkCrossClusterFanIn(b *testing.B) {
	const senders = 4
	const perSender = 64
	// The flight recorder rides along as in production: it is always on, so
	// the benchmark (and the checked-in baseline) price in its cost.
	vm, err := pisces.NewVM(pisces.SimpleConfiguration(senders+1, 2), pisces.Options{
		AcceptTimeout:  60 * time.Second,
		FlightRecorder: pisces.NewFlightRecorder(0),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer vm.Shutdown()

	ready := make(chan pisces.TaskID, senders+1)
	roundDone := make(chan struct{})
	vm.Register("collector", func(t *pisces.Task) {
		ready <- t.ID()
		for {
			m, err := t.AcceptOne("go", "stop")
			if err != nil || m.Type == "stop" {
				return
			}
			res, err := t.AcceptN(senders*perSender, "datum")
			if err != nil {
				b.Error(err)
				return
			}
			t.RecycleAccept(res)
			roundDone <- struct{}{}
		}
	})
	vm.Register("sender", func(t *pisces.Task) {
		ready <- t.ID()
		for {
			m, err := t.AcceptOne("go", "stop")
			if err != nil || m.Type == "stop" {
				return
			}
			to := pisces.MustID(m.Arg(0))
			for i := 0; i < perSender; i++ {
				if err := t.Send(to, "datum", pisces.Int(int64(i)), pisces.Str("cross-cluster payload")); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})

	collectorID, err := vm.Initiate("collector", pisces.OnCluster(1))
	if err != nil {
		b.Fatal(err)
	}
	var senderIDs []pisces.TaskID
	for i := 0; i < senders; i++ {
		id, err := vm.Initiate("sender", pisces.OnCluster(2+i))
		if err != nil {
			b.Fatal(err)
		}
		senderIDs = append(senderIDs, id)
	}
	for i := 0; i < senders+1; i++ {
		<-ready
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range senderIDs {
			if err := vm.SendFromUser(id, "go", pisces.ID(collectorID)); err != nil {
				b.Fatal(err)
			}
		}
		if err := vm.SendFromUser(collectorID, "go"); err != nil {
			b.Fatal(err)
		}
		<-roundDone
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*senders*perSender)/b.Elapsed().Seconds(), "routed-msgs/s")
	for _, id := range append(append([]pisces.TaskID(nil), senderIDs...), collectorID) {
		_ = vm.SendFromUser(id, "stop")
	}
	vm.WaitIdle()
}

// BenchmarkE6WindowPartitioning regenerates the Section 8 window-vs-shipping
// comparison and reports the traffic ratio.
func BenchmarkE6WindowPartitioning(b *testing.B) {
	b.ReportAllocs()
	p := experiments.E6Params{N: 64, Groups: 2, WorkersPerGroup: 2}
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE6(io.Discard, p)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "shipped/window-bytes")
}

// BenchmarkE7ScheduleBaseline and BenchmarkE7PiscesMapped regenerate the
// Section 3 comparison between automatic (SCHEDULE-style) and
// programmer-controlled (PISCES) mapping of the same layered task graph.
func BenchmarkE7ScheduleBaseline(b *testing.B) {
	b.ReportAllocs()
	benchE7(b, true)
}

// BenchmarkE7PiscesMapped is the PISCES half of the E7 comparison.
func BenchmarkE7PiscesMapped(b *testing.B) {
	b.ReportAllocs()
	benchE7(b, false)
}

func benchE7(b *testing.B, scheduleSide bool) {
	p := experiments.E7Params{Layers: 4, UnitsPerLayer: 8, UnitCost: 20, Workers: 4}
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE7(io.Discard, p)
		if err != nil {
			b.Fatal(err)
		}
		if scheduleSide {
			speedup = res.ScheduleSpeedup
		} else {
			speedup = res.PiscesSpeedup
		}
	}
	b.ReportMetric(speedup, "speedup-4pe")
}

// BenchmarkE8Trace regenerates the Section 12 trace demonstration and reports
// how many events the run produced.
func BenchmarkE8Trace(b *testing.B) {
	b.ReportAllocs()
	var events float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE8(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		events = float64(len(res.Events))
	}
	b.ReportMetric(events, "trace-events")
}

// BenchmarkTaskInitiation measures the cost of the INITIATE path through the
// task controller (used in the E5 discussion of run-time overheads).
func BenchmarkTaskInitiation(b *testing.B) {
	b.ReportAllocs()
	vm, err := pisces.NewVM(pisces.SimpleConfiguration(2, 4), pisces.Options{AcceptTimeout: 30 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer vm.Shutdown()
	vm.Register("noop", func(*pisces.Task) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run("noop", pisces.Any()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForceSplit measures the cost of FORCESPLIT plus a barrier for a
// four-member force (the fixed overhead visible in the E4 series).
func BenchmarkForceSplit(b *testing.B) {
	b.ReportAllocs()
	cfg := pisces.SimpleConfiguration(1, 2).WithForces(1, 7, 8, 9)
	vm, err := pisces.NewVM(cfg, pisces.Options{AcceptTimeout: 30 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer vm.Shutdown()
	done := make(chan struct{})
	vm.Register("splitter", func(t *pisces.Task) {
		for i := 0; i < b.N; i++ {
			if err := t.ForceSplit(func(m *pisces.ForceMember) { m.Barrier(nil) }); err != nil {
				b.Error(err)
				break
			}
		}
		close(done)
	})
	b.ResetTimer()
	if _, err := vm.Initiate("splitter", pisces.OnCluster(1)); err != nil {
		b.Fatal(err)
	}
	<-done
}

// BenchmarkPFIInterpret measures the interpreter's end-to-end CompileSource
// + Run path on a pre-booted VM, exactly as `pisces run` drives it.  Since
// the compiled-program cache, CompileSource is a cache hit after the first
// iteration, so in steady state this tracks cache lookup + execution (task
// initiation, a DO loop, message send/accept); BenchmarkPFICompileOnly
// isolates the real compile pipeline and BenchmarkPFIRunCached the pure
// execution half.  Later PRs use all three to track interpreter regressions.
func BenchmarkPFIInterpret(b *testing.B) {
	vm, err := pisces.NewVM(pisces.SimpleConfiguration(2, 4), pisces.Options{
		AcceptTimeout:  30 * time.Second,
		FlightRecorder: pisces.NewFlightRecorder(0),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer vm.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := pisces.CompileSource(pfiBenchSource)
		if err != nil {
			b.Fatal(err)
		}
		if err := prog.Run(vm, pisces.InterpretOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// pfiBenchSource is the fixed program used by the PFI pipeline benchmarks:
// task initiation, a DO loop, and a message send/accept round trip.
const pfiBenchSource = `TASKTYPE MAIN
      INTEGER I, S
      S = 0
      DO 10 I = 1, 100
      S = S + I * I
10    CONTINUE
      ON ANY INITIATE ECHO(S)
      ACCEPT 1 OF REPLY
END TASKTYPE
TASKTYPE ECHO(V)
      INTEGER V
      TO PARENT SEND REPLY(V)
END TASKTYPE
`

// BenchmarkPFICompileOnly measures the full compilation pipeline — lexing,
// parsing, slot resolution, closure code generation — with the compiled-code
// cache bypassed, so compile cost is tracked separately from execution.
func BenchmarkPFICompileOnly(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pisces.CompileSourceUncached(pfiBenchSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPFIRunCached measures pure execution: the program is compiled
// once and re-Run on a warm VM, the steady state of `pisces run -repeat` and
// of any embedding that reuses a compiled program.
func BenchmarkPFIRunCached(b *testing.B) {
	vm, err := pisces.NewVM(pisces.SimpleConfiguration(2, 4), pisces.Options{AcceptTimeout: 30 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer vm.Shutdown()
	prog, err := pisces.CompileSource(pfiBenchSource)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := prog.Run(vm, pisces.InterpretOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreprocessor measures the Pisces Fortran preprocessor on a small
// program (Section 10 tooling).
func BenchmarkPreprocessor(b *testing.B) {
	src := `TASKTYPE HOST(N)
      INTEGER N, I
      PRESCHED DO 10 I = 1, N
      X = X + I
10    CONTINUE
      TO PARENT SEND DONE(X)
END TASKTYPE
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pisces.Preprocess(src); err != nil {
			b.Fatal(err)
		}
	}
}
