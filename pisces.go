// Package pisces is the public API of the PISCES 2 parallel programming
// environment reproduction.  It re-exports the pieces an application needs:
//
//   - configurations (the programmer-controlled mapping of the virtual
//     machine onto the simulated FLEX/32 hardware, Section 9 of the paper),
//   - the virtual machine itself with tasktypes, INITIATE/SEND/ACCEPT
//     message passing, forces, and windows (Sections 4-8),
//   - the execution environment (Section 11) and the tracing facility
//     (Section 12),
//   - the Pisces Fortran preprocessor (Section 10).
//
// A minimal program:
//
//	cfg := pisces.SimpleConfiguration(2, 4)
//	vm, err := pisces.NewVM(cfg, pisces.Options{UserOutput: os.Stdout})
//	if err != nil { ... }
//	defer vm.Shutdown()
//
//	vm.Register("hello", func(t *pisces.Task) {
//		t.Printf("hello from task %s in cluster %d\n", t.ID(), t.Cluster())
//	})
//	vm.Run("hello", pisces.OnCluster(2))
//
// See the examples directory for window-based data partitioning, forces, and
// dynamic task pipelines.
package pisces

import (
	"io"

	"repro/internal/backend"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/flex"
	"repro/internal/obs"
	"repro/internal/pfc"
	"repro/internal/pfi"
	"repro/internal/rect"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Core virtual-machine types.
type (
	// VM is a booted PISCES 2 virtual machine.
	VM = core.VM
	// Options tune the virtual machine.
	Options = core.Options
	// Task is the run-time context of one running task.
	Task = core.Task
	// TaskID identifies a task as <cluster, slot, unique>.
	TaskID = core.TaskID
	// TaskType describes a registered tasktype.
	TaskType = core.TaskType
	// Placement is the ON <cluster> part of an INITIATE statement.
	Placement = core.Placement
	// Value is one message or task argument.
	Value = core.Value
	// Message is one received message.
	Message = core.Message
	// Handler is a HANDLER subroutine for a message type.
	Handler = core.Handler
	// AcceptSpec is the ACCEPT statement.
	AcceptSpec = core.AcceptSpec
	// AcceptResult reports what an ACCEPT processed.
	AcceptResult = core.AcceptResult
	// TypeCount names one message type in an ACCEPT statement.
	TypeCount = core.TypeCount
	// Force and ForceMember are the FORCESPLIT constructs.
	Force = core.Force
	// ForceMember is the per-member context inside a force.
	ForceMember = core.ForceMember
	// Lock is a LOCK variable for CRITICAL sections.
	Lock = core.Lock
	// Common is a SHARED COMMON block.
	Common = core.Common
	// Window is a generalized pointer to a rectangular subregion of an array.
	Window = core.Window
	// Array is a two-dimensional REAL array owned by a task.
	Array = core.Array
	// Rect is the rectangular-subregion descriptor used by windows.
	Rect = rect.Rect
	// Configuration is a virtual-machine-to-hardware mapping.
	Configuration = config.Configuration
	// ClusterConfig is the mapping of one cluster onto hardware.
	ClusterConfig = config.Cluster
	// Environment is the menu-driven execution environment.
	Environment = exec.Environment
	// TaskInfo, PELoad, and SystemStorage are execution-environment views.
	TaskInfo = core.TaskInfo
	// PELoad describes one processor's loading.
	PELoad = core.PELoad
	// SystemStorage reports the Section 13 storage-overhead quantities.
	SystemStorage = core.SystemStorage
	// Stats reports run-time activity counters.
	Stats = core.Stats
	// Limits is the per-tenant resource policy a VM enforces on its own
	// program (Options.Limits): heap bytes, cumulative tasks, wall-clock
	// time, terminal output.  Zero fields are unlimited.
	Limits = core.Limits
	// LimitError reports which per-tenant limit a VM violated; it matches
	// ErrLimitExceeded.
	LimitError = core.LimitError
)

// ErrLimitExceeded matches every per-tenant limit violation, whatever the
// resource (errors.Is).
var ErrLimitExceeded = core.ErrLimitExceeded

// NewVM boots a virtual machine for the configuration on a simulated
// FLEX/32 with the default (NASA Langley) hardware description.
func NewVM(cfg *Configuration, opts Options) (*VM, error) { return core.NewVM(cfg, opts) }

// Deterministic scheduling.
type (
	// SchedulerBackend is the pluggable scheduling substrate of a VM
	// (Options.Backend).  Nil selects the default goroutine backend.
	SchedulerBackend = backend.Backend
	// SimScheduler is the deterministic simulation backend: a cooperative
	// single-threaded scheduler driven by a seeded PRNG with a virtual
	// clock.  Same program + same seed = byte-identical run.
	SimScheduler = sim.Scheduler
	// SimDeadlock is the panic value a deterministic run raises when no task
	// can make progress.
	SimDeadlock = sim.Deadlock
)

// NewSimScheduler returns a deterministic scheduling backend seeded with
// seed, for core.Options.Backend / pisces.Options.Backend.  A scheduler
// belongs to exactly one VM, and a deterministic VM must be driven from a
// single goroutine.
func NewSimScheduler(seed int64) *SimScheduler { return sim.New(seed) }

// Forever and All are the special ACCEPT delay and count values; AnyMessage
// is the wildcard message type.
const (
	Forever    = core.Forever
	All        = core.All
	AnyMessage = core.AnyMessage
)

// Placements.
var (
	// OnCluster places a new task on a specific cluster ("CLUSTER <n>").
	OnCluster = core.OnCluster
	// Any lets the system choose a cluster ("ANY").
	Any = core.Any
	// Other places the task on a different cluster than the initiator's
	// ("OTHER").
	Other = core.Other
	// Same places the task on the initiator's cluster ("SAME").
	Same = core.Same
)

// Value constructors and accessors.
var (
	Int   = core.Int
	Real  = core.Real
	Bool  = core.Bool
	Str   = core.Str
	ID    = core.ID
	Ints  = core.Ints
	Reals = core.Reals
	Win   = core.Win

	AsInt   = core.AsInt
	AsReal  = core.AsReal
	AsBool  = core.AsBool
	AsStr   = core.AsStr
	AsID    = core.AsID
	AsInts  = core.AsInts
	AsReals = core.AsReals
	AsWin   = core.AsWin

	MustInt   = core.MustInt
	MustReal  = core.MustReal
	MustStr   = core.MustStr
	MustID    = core.MustID
	MustReals = core.MustReals
	MustWin   = core.MustWin
)

// ParseTaskID parses the "cluster.slot.unique" textual form of a taskid.
func ParseTaskID(s string) (TaskID, error) { return core.ParseTaskID(s) }

// NewRect returns the rectangle [r1..r2] x [c1..c2] (1-based, inclusive).
func NewRect(r1, r2, c1, c2 int) Rect { return rect.New(r1, r2, c1, c2) }

// WholeRect returns the rectangle covering an entire rows x cols array.
func WholeRect(rows, cols int) Rect { return rect.Whole(rows, cols) }

// SimpleConfiguration returns an n-cluster configuration with `slots` user
// slots per cluster and no force PEs, mapped onto PEs 3..(2+n).
func SimpleConfiguration(n, slots int) *Configuration { return config.Simple(n, slots) }

// Section9Configuration returns the worked mapping example of Section 9 of
// the paper (4 clusters, forces on PEs 7-20).
func Section9Configuration() *Configuration { return config.Section9Example() }

// LoadConfiguration reads a configuration saved by Configuration.Save.
func LoadConfiguration(r io.Reader) (*Configuration, error) { return config.Load(r) }

// NewEnvironment creates a menu-driven execution environment over a VM.
func NewEnvironment(vm *VM, out io.Writer) *Environment { return exec.New(vm, out) }

// ExecMenu returns the execution environment's option menu text.
func ExecMenu() string { return exec.Menu() }

// Preprocess translates Pisces Fortran source into standard Fortran 77 with
// calls on the PISCES run-time library.
func Preprocess(src string) (string, error) {
	res, err := pfc.Preprocess(src, pfc.Options{})
	if err != nil {
		return "", err
	}
	return res.Fortran, nil
}

// The Pisces Fortran interpreter (internal/pfi): .pf programs executed
// directly on an in-memory VM, no Fortran compiler required.
type (
	// InterpretedProgram is a compiled Pisces Fortran program.
	InterpretedProgram = pfi.Program
	// InterpretOptions select the entry tasktype and its placement.
	InterpretOptions = pfi.Options
)

// CompileSource compiles Pisces Fortran source text for direct interpretation
// on a VM.  Register the result on a VM (or call Run) to execute it.
// Compiled code is cached by source text: compiling the same program again
// returns a fresh program (its own activity counters and error state) over
// the shared slot-compiled code, skipping lexing and parsing entirely.
func CompileSource(src string) (*InterpretedProgram, error) { return pfi.Compile(src) }

// CompileSourceUncached compiles without consulting or populating the
// compiled-code cache.  It exists for benchmarks and tools that measure the
// true compilation cost; applications should use CompileSource.
func CompileSourceUncached(src string) (*InterpretedProgram, error) {
	return pfi.CompileUncached(src)
}

// Compile caching.  CompileSource shares one bounded process-wide cache; a
// long-running service (the serving daemon, a test harness) builds its own
// CompileCache so its tenants share compiled units with each other but not
// with unrelated code in the same process.
type (
	// CompileCache is a bounded LRU cache of compiled programs, keyed by
	// source text and safe for concurrent use.
	CompileCache = pfi.UnitCache
	// CompileCacheStats is a snapshot of a CompileCache's hit/miss/eviction
	// accounting.
	CompileCacheStats = pfi.CacheStats
)

// NewCompileCache builds a compile cache bounded to maxBytes of compiled
// program weight; maxBytes <= 0 selects the default bound.
func NewCompileCache(maxBytes int64) *CompileCache { return pfi.NewUnitCache(maxBytes) }

// Interpret compiles Pisces Fortran source and runs it end-to-end on the VM:
// the program's tasktypes are registered, the main tasktype is initiated, and
// the call returns once every task the program started has terminated.  The
// returned program exposes the interpreter's activity counters.
func Interpret(vm *VM, src string, opts InterpretOptions, args ...Value) (*InterpretedProgram, error) {
	return pfi.Interpret(vm, src, opts, args...)
}

// Tracing.
type (
	// TraceEvent is one trace record.
	TraceEvent = trace.Event
	// TraceKind identifies a traceable event type.
	TraceKind = trace.Kind
	// TraceSink receives enabled trace events.
	TraceSink = trace.Sink
	// MemoryTraceSink retains trace events in memory.
	MemoryTraceSink = trace.MemorySink
	// WriterTraceSink writes trace lines to an io.Writer.
	WriterTraceSink = trace.WriterSink
)

// Traceable event kinds (Section 12).
const (
	TraceTaskInit     = trace.TaskInit
	TraceTaskTerm     = trace.TaskTerm
	TraceMsgSend      = trace.MsgSend
	TraceMsgAccept    = trace.MsgAccept
	TraceLock         = trace.Lock
	TraceUnlock       = trace.Unlock
	TraceBarrierEnter = trace.BarrierEnter
	TraceForceSplit   = trace.ForceSplit
)

// AnalyzeTrace summarises trace events for off-line study.
func AnalyzeTrace(events []TraceEvent) trace.Analysis { return trace.Analyze(events) }

// Runtime observability (internal/obs): a metric registry (atomic counters,
// gauges, and log-scale histograms) plus lightweight span capture, threaded
// through every layer of the message path.  Pass a registry through
// Options.Metrics and enable the concerns you want; disabled instrumentation
// costs one atomic load per site.
type (
	// ObsRegistry collects runtime metrics and spans (Options.Metrics).
	ObsRegistry = obs.Registry
	// ObsSnapshot is a point-in-time, name-sorted view of a registry.
	ObsSnapshot = obs.Snapshot
	// ObsMask selects which observability concerns are enabled.
	ObsMask = obs.Mask
)

// Observability enable bits for ObsRegistry.Enable.
const (
	// ObsMetrics enables the counters, gauges, and histograms.
	ObsMetrics = obs.Metrics
	// ObsSpans enables span capture (ObsRegistry.WriteChromeTrace).
	ObsSpans = obs.Spans
)

// NewObsRegistry returns an empty observability registry with everything
// disabled, for Options.Metrics.
func NewObsRegistry() *ObsRegistry { return obs.New() }

// FlightRecorder is the always-on forensic event ring (Options.FlightRecorder):
// a few atomic stores per routed send/accept/kill/limit event, dumpable as a
// blackbox blob for `pisces blackbox` after a failure.
type FlightRecorder = obs.Recorder

// NewFlightRecorder returns a flight recorder with the default ring geometry
// for the given node id (0 for single-process runs).
func NewFlightRecorder(nodeID int) *FlightRecorder { return obs.NewRecorder(nodeID, 0, 0) }

// FlexDefaultConfig returns the simulated FLEX/32 hardware description
// (20 PEs, 1 MiB local memory each, 2.25 MiB shared memory).
func FlexDefaultConfig() flex.Config { return flex.DefaultConfig() }
