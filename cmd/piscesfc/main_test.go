package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testSource = `TASKTYPE MAIN
      FORCESPLIT
      TO PARENT SEND OK
END TASKTYPE
`

func TestRunTranslatesFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "prog.pf")
	out := filepath.Join(dir, "prog.f")
	if err := os.WriteFile(in, []byte(testSource), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(out, "PS", false, false, false, []string{in}); err != nil {
		t.Fatal(err)
	}
	generated, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SUBROUTINE PTMAIN", "CALL PSFORK", "CALL PSRGST('MAIN', PTMAIN)"} {
		if !strings.Contains(string(generated), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunStubs(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "stubs.f")
	if err := run(out, "PX", false, false, true, nil); err != nil {
		t.Fatal(err)
	}
	generated, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(generated), "SUBROUTINE PXINIT") {
		t.Error("stub output missing runtime entry")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	// Too many input files.
	if err := run("", "PS", false, false, false, []string{"a", "b"}); err == nil {
		t.Error("two inputs accepted")
	}
	// Missing input file.
	if err := run("", "PS", false, false, false, []string{filepath.Join(dir, "missing.pf")}); err == nil {
		t.Error("missing input accepted")
	}
	// Bad source.
	bad := filepath.Join(dir, "bad.pf")
	if err := os.WriteFile(bad, []byte("END TASKTYPE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", "PS", false, false, false, []string{bad}); err == nil {
		t.Error("bad source accepted")
	}
	// Unwritable output path.
	good := filepath.Join(dir, "good.pf")
	if err := os.WriteFile(good, []byte(testSource), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join(dir, "no-such-dir", "out.f"), "PS", false, false, false, []string{good}); err == nil {
		t.Error("unwritable output accepted")
	}
}
