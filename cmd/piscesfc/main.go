// Command piscesfc is the Pisces Fortran preprocessor (paper, Section 10):
// it reads Pisces Fortran source and writes standard Fortran 77 with embedded
// calls on the PISCES run-time library.
//
// Usage:
//
//	piscesfc [-o output.f] [-prefix PS] [-keep-comments] [-list] [input.pf]
//
// With no input file the source is read from standard input; with no -o the
// generated Fortran is written to standard output.  -list prints the
// tasktypes found instead of translating.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/pfc"
)

func main() {
	out := flag.String("o", "", "output file (default: standard output)")
	prefix := flag.String("prefix", "PS", "run-time library name prefix")
	keep := flag.Bool("keep-comments", false, "copy full-line comments into the output")
	list := flag.Bool("list", false, "list the tasktypes found and exit")
	stubs := flag.Bool("stubs", false, "write Fortran stubs for the PISCES run-time library interface and exit")
	flag.Parse()

	if err := run(*out, *prefix, *keep, *list, *stubs, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "piscesfc: %v\n", err)
		os.Exit(1)
	}
}

func run(outPath, prefix string, keepComments, list, stubs bool, args []string) error {
	if stubs {
		return writeOutput(outPath, pfc.RuntimeStubs(pfc.Options{RuntimePrefix: prefix}))
	}

	var src []byte
	var err error
	switch len(args) {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(args[0])
	default:
		return fmt.Errorf("at most one input file may be given")
	}
	if err != nil {
		return err
	}

	res, err := pfc.Preprocess(string(src), pfc.Options{RuntimePrefix: prefix, KeepComments: keepComments})
	if err != nil {
		return err
	}

	if list {
		for _, tt := range res.Program.TaskTypes {
			force := ""
			if tt.UsesForce {
				force = "  (uses FORCESPLIT)"
			}
			fmt.Printf("tasktype %-16s params=%v handlers=%v signals=%v%s\n",
				tt.Name, tt.Params, tt.Handlers, tt.Signals, force)
		}
		return nil
	}

	return writeOutput(outPath, res.Fortran)
}

// writeOutput writes text to the named file, or to standard output when no
// file was given.
func writeOutput(outPath, text string) error {
	if outPath == "" {
		_, err := io.WriteString(os.Stdout, text)
		return err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(f, text); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
