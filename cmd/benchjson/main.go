// Command benchjson runs the repository's Go benchmark suite and emits the
// results as machine-readable JSON, giving the performance trajectory a
// checked-in baseline (BENCH_pr5.json) and CI a stable artifact format.
//
// Usage:
//
//	go run ./cmd/benchjson [-out BENCH_pr5.json] [-bench regex]
//	       [-benchtime 100x] [-pkgs ./...,...] [-label pr5]
//	       [-compare BASELINE.json] [-threshold 25]
//	       [-improve 'Benchmark:unit:factor,...'] [-improve-base OLD.json]
//
// With -compare the fresh run is also diffed against a checked-in baseline
// report: for every benchmark present in both, ns/op may not grow and
// throughput metrics (any unit ending in "/s") may not shrink by more than
// -threshold percent, or the command exits non-zero — the CI guard that a
// change did not quietly slow the message hot path down.
//
// -improve asserts the opposite direction: a claimed optimisation must still
// deliver.  Each comma-separated spec 'Benchmark:unit:factor' requires the
// fresh run's metric to be at least factor× better than the -improve-base
// report's (higher for throughputs, lower for ns/op and */op costs), or the
// command exits non-zero.  -improve-base defaults to the -compare file, so a
// perf PR pins its speed-up against the pre-optimisation baseline while the
// ordinary regression gate tracks the new one.
//
// It shells out to `go test -run ^$ -bench <regex> -benchmem` for each
// package pattern, parses the standard benchmark output lines
// (name, iterations, then value/unit pairs), and writes one JSON document:
//
//	{
//	  "label": "pr5",
//	  "go": "go1.24.x",
//	  "benchmarks": [
//	    {"name": "BenchmarkNodeFanIn", "package": "repro/internal/node",
//	     "iterations": 20000,
//	     "metrics": {"ns/op": 4306, "msgs/s": 232236, "B/op": 874, "allocs/op": 10}}
//	  ]
//	}
//
// allocs/op and B/op are the stable cross-machine quantities; ns/op and
// msgs/s are machine-dependent but comparable between runs on one runner.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	Label      string      `json:"label"`
	Go         string      `json:"go"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_pr5.json", "output JSON file")
	bench := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "100x", "passed to go test -benchtime (fixed counts keep a hung benchmark from stalling CI)")
	pkgs := flag.String("pkgs", "./...", "comma-separated package patterns to benchmark")
	label := flag.String("label", "pr5", "label recorded in the report")
	compare := flag.String("compare", "", "baseline report to diff against; exit non-zero on a regression beyond -threshold")
	threshold := flag.Float64("threshold", 25, "maximum tolerated regression in percent for -compare")
	improve := flag.String("improve", "", "comma-separated 'Benchmark:unit:factor' assertions: the fresh metric must be at least factor x better than the -improve-base report's")
	improveBase := flag.String("improve-base", "", "baseline report for -improve (defaults to the -compare file)")
	flag.Parse()

	rep := Report{Label: *label, Go: runtime.Version()}
	for _, pattern := range strings.Split(*pkgs, ",") {
		pattern = strings.TrimSpace(pattern)
		if pattern == "" {
			continue
		}
		bs, err := runPackage(pattern, *bench, *benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", pattern, err)
			os.Exit(1)
		}
		rep.Benchmarks = append(rep.Benchmarks, bs...)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks matched %q in %q\n", *bench, *pkgs)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmark results to %s\n", len(rep.Benchmarks), *out)

	if *compare != "" {
		regressions, err := compareAgainst(*compare, rep, *threshold, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%% against %s\n", regressions, *threshold, *compare)
			os.Exit(1)
		}
	}

	if *improve != "" {
		basePath := *improveBase
		if basePath == "" {
			basePath = *compare
		}
		if basePath == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -improve needs -improve-base (or -compare) to name the old report")
			os.Exit(1)
		}
		missed, err := assertImprovements(basePath, rep, *improve, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if missed > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d improvement assertion(s) missed against %s\n", missed, basePath)
			os.Exit(1)
		}
	}
}

// assertImprovements enforces 'Benchmark:unit:factor' specs against an older
// report: for throughput units (ending in "/s") the fresh value must be at
// least factor times the old one; for cost units (ns/op and anything ending
// in "/op") it must be at most old/factor.  A spec naming a benchmark or
// unit absent from either report is an error, not a silent pass — a renamed
// benchmark must not quietly disarm the assertion.
func assertImprovements(path string, fresh Report, specs string, w *os.File) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	current := make(map[string]Benchmark, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		current[b.Name] = b
	}
	fmt.Fprintf(w, "benchjson: improvement assertions against %s (label %q)\n", path, base.Label)
	missed := 0
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return 0, fmt.Errorf("bad -improve spec %q, want 'Benchmark:unit:factor'", spec)
		}
		name, unit := parts[0], parts[1]
		factor, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || factor <= 0 {
			return 0, fmt.Errorf("bad -improve factor in %q", spec)
		}
		ov, ok := baseline[name].Metrics[unit]
		if !ok || ov == 0 {
			return 0, fmt.Errorf("%s: baseline %s has no %s %s", spec, path, name, unit)
		}
		nv, ok := current[name].Metrics[unit]
		if !ok {
			return 0, fmt.Errorf("%s: fresh run has no %s %s", spec, name, unit)
		}
		// ratio > 1 means better, whichever direction the unit improves in.
		ratio := nv / ov
		if unit == "ns/op" || strings.HasSuffix(unit, "/op") {
			ratio = ov / nv
		}
		verdict := "ok"
		if ratio < factor {
			verdict = "MISSED"
			missed++
		}
		fmt.Fprintf(w, "  %-30s %-14s %12.0f -> %-12.0f %.2fx (want >= %.2fx) %s\n", name, unit, ov, nv, ratio, factor, verdict)
	}
	return missed, nil
}

// compareAgainst diffs the fresh report against a baseline file and reports
// how many benchmarks regressed beyond the threshold.  ns/op counts as a
// regression when it grows; metrics whose unit ends in "/s" (throughputs)
// when they shrink.  Alloc metrics print for context but never fail the
// comparison — they are asserted by dedicated tests, and a diff against a
// baseline from a different Go version would misfire here.  Benchmarks only
// present on one side are listed but tolerated, so adding a benchmark does
// not break the gate.
func compareAgainst(path string, fresh Report, thresholdPct float64, w *os.File) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	fmt.Fprintf(w, "benchjson: comparing against %s (label %q, threshold %.0f%%)\n", path, base.Label, thresholdPct)
	regressions := 0
	for _, b := range fresh.Benchmarks {
		old, ok := baseline[b.Name]
		if !ok {
			fmt.Fprintf(w, "  %-30s new benchmark, no baseline\n", b.Name)
			continue
		}
		delete(baseline, b.Name)
		for _, unit := range sortedKeys(b.Metrics) {
			nv := b.Metrics[unit]
			ov, ok := old.Metrics[unit]
			if !ok || ov == 0 {
				continue
			}
			// Positive delta = worse: time grew or throughput shrank.
			var deltaPct float64
			switch {
			case unit == "ns/op":
				deltaPct = (nv - ov) / ov * 100
			case strings.HasSuffix(unit, "/s"):
				deltaPct = (ov - nv) / ov * 100
			default:
				fmt.Fprintf(w, "  %-30s %-14s %12.0f -> %-12.0f (informational)\n", b.Name, unit, ov, nv)
				continue
			}
			verdict := "ok"
			if deltaPct > thresholdPct {
				verdict = "REGRESSION"
				regressions++
			}
			fmt.Fprintf(w, "  %-30s %-14s %12.0f -> %-12.0f %+6.1f%% %s\n", b.Name, unit, ov, nv, deltaPct, verdict)
		}
	}
	for _, name := range sortedKeys(baseline) {
		fmt.Fprintf(w, "  %-30s present in baseline only\n", name)
	}
	return regressions, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// runPackage benchmarks one package pattern and parses the output.
func runPackage(pattern, bench, benchtime string) ([]Benchmark, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench, "-benchtime", benchtime, "-benchmem", pattern)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test: %w\n%s", err, buf.String())
	}
	os.Stdout.Write(buf.Bytes())
	return parseBenchOutput(&buf)
}

// parseBenchOutput extracts benchmark lines from `go test -bench` output.
func parseBenchOutput(r *bytes.Buffer) ([]Benchmark, error) {
	var out []Benchmark
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			// Trim the -GOMAXPROCS suffix so names stay stable across runners.
			Name:       strings.SplitN(fields[0], "-", 2)[0],
			Package:    pkg,
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	return out, sc.Err()
}
