// Command experiments regenerates the paper's tables and figures on the
// simulated FLEX/32 (see DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for paper-vs-measured results).
//
// Usage:
//
//	experiments [-run e1|e2|...|e8|all] [-list]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run (e1..e8 or all)")
	list := flag.Bool("list", false, "list the experiments and exit")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names {
			fmt.Printf("%-4s %s\n", n, experiments.Describe(n))
		}
		return
	}
	if err := experiments.Run(*run, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
