package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	pisces "repro"
)

func TestBuildConfigurationVariants(t *testing.T) {
	// Section 9 canned configuration.
	cfg, err := buildConfiguration("section9", 0, 0, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Clusters) != 4 || cfg.Cluster(3).ForceSize() != 10 {
		t.Fatalf("section9 configuration wrong: %+v", cfg)
	}

	// Simple configuration with forces and trace events.
	cfg, err = buildConfiguration("", 2, 3, "7, 8", "msg-send,force-split")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cluster(1).ForceSize() != 3 || cfg.Cluster(2).Slots != 3 {
		t.Fatalf("simple configuration wrong: %+v", cfg)
	}
	if len(cfg.TraceEvents) != 2 || cfg.TraceEvents[0] != "MSG-SEND" {
		t.Fatalf("trace events = %v", cfg.TraceEvents)
	}

	// Saved file round trip through -config.
	dir := t.TempDir()
	path := filepath.Join(dir, "saved.cfg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loaded, err := buildConfiguration(path, 0, 0, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cluster(1).ForceSize() != 3 {
		t.Fatalf("loaded configuration wrong: %+v", loaded)
	}

	// Errors: bad forces list, missing file.
	if _, err := buildConfiguration("", 2, 3, "seven", ""); err == nil {
		t.Error("bad forces list accepted")
	}
	if _, err := buildConfiguration(filepath.Join(dir, "missing.cfg"), 0, 0, "", ""); err == nil {
		t.Error("missing configuration file accepted")
	}
}

func TestRunShowAndSave(t *testing.T) {
	dir := t.TempDir()
	saved := filepath.Join(dir, "out.cfg")
	if err := run("", 2, 2, "", "", saved, false, false, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(saved)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "pisces-configuration") {
		t.Errorf("saved file malformed: %q", string(data))
	}
	// -show exits before booting anything.
	if err := run("", 3, 2, "", "", "", true, false, ""); err != nil {
		t.Fatal(err)
	}
	// Invalid trace event surfaces as a boot error in a scripted run.
	script := filepath.Join(dir, "script.txt")
	if err := os.WriteFile(script, []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", 2, 2, "", "NOT-AN-EVENT", "", false, false, script); err == nil {
		t.Error("invalid trace event accepted at boot")
	}
}

func TestRunScriptedSession(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "session.txt")
	cmds := strings.Join([]string{
		"help",
		"initiate hello cluster 2",
		"initiate force-sum cluster 1 1000",
		"tasks",
		"loading",
		"0",
	}, "\n") + "\n"
	if err := os.WriteFile(script, []byte(cmds), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", 2, 3, "7,8", "", "", false, false, script); err != nil {
		t.Fatal(err)
	}
}

// TestRunInterpretsExampleProgram is the golden test for the acceptance
// path: "pisces run examples/sumsq.pf" interprets a Pisces Fortran program
// end-to-end on the in-memory VM (INITIATE, SEND/ACCEPT, FORCESPLIT, and a
// PRESCHED DO loop), producing the expected terminal output.
func TestRunInterpretsExampleProgram(t *testing.T) {
	example := filepath.Join("..", "..", "examples", "sumsq.pf")

	var out strings.Builder
	if err := runInterpreted([]string{example}, &out); err != nil {
		t.Fatal(err)
	}
	want := "WORKERS 4\nTOTAL 338350\nFORCE MEMBERS 1\nFORCE TOTAL 338350\n"
	if out.String() != want {
		t.Errorf("pisces run output:\n%q\nwant:\n%q", out.String(), want)
	}

	// With secondary PEs the FORCESPLIT spreads over a three-member force.
	out.Reset()
	if err := runInterpreted([]string{"-forces", "7,8", "-stats", example}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"WORKERS 4\n", "TOTAL 338350\n", "FORCE MEMBERS 3\n", "FORCE TOTAL 338350\n",
		"interpreter activity", "forcesplits", "loop.iterations",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("pisces run -forces output missing %q:\n%s", want, got)
		}
	}

	// -trace attaches a sink, so enabled events actually display.
	out.Reset()
	if err := runInterpreted([]string{"-trace", "MSG-SEND", example}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MSG-SEND") {
		t.Errorf("pisces run -trace produced no trace lines:\n%s", out.String())
	}

	// Errors: missing file, missing argument, unknown entry tasktype.
	if err := runInterpreted([]string{"missing.pf"}, &out); err == nil {
		t.Error("missing program file accepted")
	}
	if err := runInterpreted([]string{}, &out); err == nil {
		t.Error("missing program argument accepted")
	}
	if err := runInterpreted([]string{"-main", "NOSUCH", example}, &out); err == nil {
		t.Error("unknown -main tasktype accepted")
	}
}

// TestRunStatsHistogramsAndTraceOut covers the observability surfaces of
// "pisces run": -stats grows runtime-metric histogram summaries, and
// -trace-out writes a Chrome trace-event JSON file of the captured spans.
func TestRunStatsHistogramsAndTraceOut(t *testing.T) {
	example := filepath.Join("..", "..", "examples", "sumsq.pf")

	var out strings.Builder
	if err := runInterpreted([]string{"-sim", "-seed", "3", "-stats", example}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"runtime metrics", "distributions",
		"core.heap.charge", "pfi.stmt.ns", "core.accept.wait.ns", "core.heap.msg.bytes",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("pisces run -stats output missing %q:\n%s", want, got)
		}
	}

	traceFile := filepath.Join(t.TempDir(), "trace.json")
	out.Reset()
	if err := runInterpreted([]string{"-trace-out", traceFile, example}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-trace-out file is not valid JSON: %v\n%s", err, data)
	}
	var complete int
	var pfiLane bool
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			complete++
		}
		if e.Ph == "M" && strings.HasPrefix(e.Args.Name, "pfi/") {
			pfiLane = true
		}
	}
	if complete == 0 || !pfiLane {
		t.Fatalf("trace file has %d complete events, pfi lane %v:\n%s", complete, pfiLane, data)
	}
}

func TestDemoTasksRegistered(t *testing.T) {
	vm, err := pisces.NewVM(pisces.SimpleConfiguration(2, 2), pisces.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Shutdown()
	registerDemoTasks(vm)
	names := vm.TaskTypes()
	joined := strings.Join(names, ",")
	for _, want := range []string{"hello", "spawner", "force-sum"} {
		if !strings.Contains(joined, want) {
			t.Errorf("demo tasktype %q not registered (have %v)", want, names)
		}
	}
	if _, err := vm.Run("hello", pisces.Any()); err != nil {
		t.Fatal(err)
	}
	vm.WaitIdle()
}
