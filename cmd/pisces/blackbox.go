package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/msgcodec"
)

// runBlackbox implements "pisces blackbox [-last N] <dump> [dump ...]":
// decode one or more flight-recorder dumps written on failure paths (or via
// serve -blackbox-out), merge them into a single timeline, and pretty-print
// the tail.  Dumps from different nodes merge by timestamp; causal edge ids
// that appear in more than one node's dump are flagged so a cross-node
// message can be followed from its send record to its accept record.
func runBlackbox(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pisces blackbox", flag.ContinueOnError)
	last := fs.Int("last", 0, "print only the last N merged events (0 = all)")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: pisces blackbox [-last N] <dump> [dump ...]")
	}

	type nodeEvent struct {
		msgcodec.BlackboxEvent
		node int
	}
	var merged []nodeEvent
	// edgeNodes tracks which nodes saw each causal edge; an edge present on
	// two nodes is a message that crossed the wire.
	edgeNodes := make(map[uint64]map[int]bool)
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		nodeID, dumpTS, events, err := msgcodec.DecodeBlackbox(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(out, "%s: node %d, %d events, dumped %s\n",
			path, nodeID, len(events), time.Unix(0, dumpTS).UTC().Format(time.RFC3339Nano))
		for _, ev := range events {
			merged = append(merged, nodeEvent{BlackboxEvent: ev, node: nodeID})
			if ev.Edge != 0 {
				if edgeNodes[ev.Edge] == nil {
					edgeNodes[ev.Edge] = make(map[int]bool)
				}
				edgeNodes[ev.Edge][nodeID] = true
			}
		}
	}
	// Merge by timestamp; ties (common under the virtual clock) break by
	// sequence then node so the listing is stable across runs.
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.node < b.node
	})

	crossEdges := 0
	for _, nodes := range edgeNodes {
		if len(nodes) > 1 {
			crossEdges++
		}
	}
	fmt.Fprintf(out, "merged: %d events, %d causal edges (%d cross-node)\n\n",
		len(merged), len(edgeNodes), crossEdges)

	show := merged
	if *last > 0 && len(show) > *last {
		fmt.Fprintf(out, "... %d earlier events elided ...\n", len(show)-*last)
		show = show[len(show)-*last:]
	}
	base := int64(0)
	if len(merged) > 0 {
		base = merged[0].TS
	}
	for _, ev := range show {
		mark := " "
		if ev.Edge != 0 && len(edgeNodes[ev.Edge]) > 1 {
			mark = "*" // edge seen by more than one node
		}
		fmt.Fprintf(out, "n%d %s #%-6d +%-12s %-14s %s\n",
			ev.node, mark, ev.Seq,
			time.Duration(ev.TS-base).String(),
			msgcodec.EventKindName(ev.Kind),
			describeEvent(ev.BlackboxEvent))
	}
	return nil
}

// describeEvent renders the kind-specific A/B operands of one event.
func describeEvent(ev msgcodec.BlackboxEvent) string {
	switch ev.Kind {
	case msgcodec.EvSend:
		dst := fmt.Sprintf("c%d", ev.B)
		if ev.B < 0 {
			dst = "broadcast"
		}
		return fmt.Sprintf("edge=%#x c%d -> %s", ev.Edge, ev.A, dst)
	case msgcodec.EvAccept:
		return fmt.Sprintf("edge=%#x c%d <- c%d", ev.Edge, ev.A, ev.B)
	case msgcodec.EvKill:
		return fmt.Sprintf("task %d.%d", ev.A, ev.B)
	case msgcodec.EvCreditStall:
		return fmt.Sprintf("peer n%d window dry", ev.A)
	case msgcodec.EvCheckpoint:
		return fmt.Sprintf("origin n%d epoch %d", ev.A, ev.B)
	case msgcodec.EvLimit:
		return fmt.Sprintf("%s limit %d exceeded", limitResourceName(ev.A), ev.B)
	case msgcodec.EvHeartbeatMiss:
		return fmt.Sprintf("n%d declared dead", ev.A)
	}
	return fmt.Sprintf("edge=%#x a=%d b=%d", ev.Edge, ev.A, ev.B)
}

// limitResourceName inverts core's limitResourceCode mapping.
func limitResourceName(code int64) string {
	switch code {
	case 1:
		return "heap"
	case 2:
		return "tasks"
	case 3:
		return "wallclock"
	case 4:
		return "output"
	}
	return fmt.Sprintf("resource#%d", code)
}
