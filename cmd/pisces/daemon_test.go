package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon launches the built binary in daemon mode and returns its base
// URL plus the running command.  The caller owns shutdown.
func startDaemon(t *testing.T, bin string, extraArgs ...string) (string, *exec.Cmd, *strings.Builder) {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	var stderr strings.Builder
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})

	// The daemon announces its bound address on stdout once the listener is
	// up; everything after that line is drained in the background.
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if _, addr, ok := strings.Cut(line, "serving on http://"); ok {
				addrCh <- addr
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cmd, &stderr
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never announced its address\nstderr:\n%s", stderr.String())
		return "", nil, nil
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// TestDaemonSmoke is the serving-mode acceptance smoke test, the same
// scenario the serve-smoke CI job runs: start the daemon as a real OS
// process, submit three programs over HTTP — two good, one that exceeds its
// task quota — assert per-program outputs and status codes, then SIGTERM and
// require a clean drain with exit 0.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and forks a real daemon process")
	}
	bin := buildPisces(t)
	base, cmd, stderr := startDaemon(t, bin, "-max-programs", "2")

	good := "TASKTYPE MAIN\n      PRINT *, 'SMOKE', 41 + 1\nEND TASKTYPE\n"
	spawny := `TASKTYPE MAIN
      INTEGER W
      SIGNAL RESULT
      DO 10 W = 1, 6
        ON ANY INITIATE WORKER(W)
10    CONTINUE
      ACCEPT 6 OF RESULT
      PRINT *, 'ALL IN'
END TASKTYPE

TASKTYPE WORKER(ME)
      INTEGER ME
      TO PARENT SEND RESULT(ME)
END TASKTYPE
`

	submit := func(tenant, src string, limits map[string]any) (string, int) {
		body := map[string]any{"tenant": tenant, "source": src}
		if limits != nil {
			body["limits"] = limits
		}
		resp, raw := postJSON(t, base+"/programs", body)
		if resp.StatusCode != http.StatusAccepted {
			return "", resp.StatusCode
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("submit response %q: %v", raw, err)
		}
		return st.ID, resp.StatusCode
	}
	wait := func(id string) (state, quota, output string) {
		resp, err := http.Get(base + "/programs/" + id + "/output?wait=1")
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		sresp, err := http.Get(base + "/programs/" + id + "/status")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Quota string `json:"quota_violation"`
		}
		if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		sresp.Body.Close()
		return st.State, st.Quota, string(out)
	}

	// Program 1: plain success.
	id1, code := submit("alice", good, nil)
	if code != http.StatusAccepted {
		t.Fatalf("program 1 submit = %d; want 202", code)
	}
	// Program 2: same source from another tenant (shares the compile cache).
	id2, code := submit("bob", good, nil)
	if code != http.StatusAccepted {
		t.Fatalf("program 2 submit = %d; want 202", code)
	}
	// Program 3: spawns six workers under a quota of two tasks.
	id3, code := submit("greedy", spawny, map[string]any{"max_tasks": 2})
	if code != http.StatusAccepted {
		t.Fatalf("program 3 submit = %d; want 202", code)
	}

	for _, id := range []string{id1, id2} {
		state, quota, out := wait(id)
		if state != "done" || quota != "" {
			t.Fatalf("program %s: state=%q quota=%q; want done", id, state, quota)
		}
		if !strings.Contains(out, "SMOKE") || !strings.Contains(out, "42") {
			t.Fatalf("program %s output = %q; want the SMOKE 42 line", id, out)
		}
	}
	state, quota, out := wait(id3)
	if state != "failed" || quota != "tasks" {
		t.Fatalf("quota program: state=%q quota=%q; want failed/tasks\noutput: %s", state, quota, out)
	}
	if strings.Contains(out, "ALL IN") {
		t.Fatalf("quota program printed its success line:\n%s", out)
	}

	// The daemon-wide metric view serves on the same listener.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"pisces_serve_sessions_submitted 3", "pisces_serve_sessions_quota 1", "pisces_serve_cache_hits"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("daemon did not exit after SIGTERM\nstderr:\n%s", stderr.String())
	}
}

// TestLoadgenSmoke: "pisces loadgen" against a live daemon completes
// programs and reports throughput and latency quantiles.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and forks a real daemon process")
	}
	bin := buildPisces(t)
	base, cmd, stderr := startDaemon(t, bin, "-max-programs", "4")
	addr := strings.TrimPrefix(base, "http://")

	out := runBinary(t, bin, "loadgen", "-addr", addr, "-tenants", "4", "-duration", "2s")
	if !strings.Contains(out, "programs/s") || !strings.Contains(out, "p99") {
		t.Fatalf("loadgen report missing throughput/latency lines:\n%s", out)
	}
	var completed int
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "completed") {
			if _, err := fmt.Sscanf(strings.TrimSpace(line), "completed  %d", &completed); err == nil {
				break
			}
		}
	}
	if completed == 0 {
		t.Fatalf("loadgen completed no programs:\n%s", out)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("daemon did not exit after SIGTERM\nstderr:\n%s", stderr.String())
	}
}
