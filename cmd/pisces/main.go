// Command pisces is the PISCES 2 configuration and execution environment
// (paper, Sections 9 and 11).  It builds or loads a configuration (the
// mapping of the virtual machine onto the simulated FLEX/32), boots the
// virtual machine with a set of built-in demonstration tasktypes, and then
// enters the menu-driven execution environment where tasks can be initiated,
// killed, sent messages, and inspected.
//
// Usage:
//
//	pisces [-config file] [-clusters n] [-slots k] [-forces "7,8,9"]
//	       [-trace events] [-save file] [-show] [-script file]
//	pisces run [-clusters n] [-slots k] [-forces "7,8,9"] [-main T]
//	       [-stats] [-sim [-seed N]] [-netfault] [-nodes N [-ha]] <program.pf>
//	pisces serve -node K -peers addr0,addr1,... [-clusters n] [-slots k]
//	       [-ha [-heartbeat-interval d] [-checkpoint-interval d]] <program.pf>
//	pisces serve [-addr host:port] [-max-programs n] [-queue-depth n]
//	       [-limit-heap-bytes n] [-limit-tasks n] [-limit-wallclock d]
//	       [-limit-output-bytes n] [-cache-bytes n] [-tenant-metrics]
//	pisces loadgen -addr host:port [-tenants n] [-duration d]
//	pisces blackbox [-last N] <dump> [dump ...]
//
// The run form interprets a Pisces Fortran program directly on the in-memory
// virtual machine (paper, Section 10, without the Fortran compiler leg).
// With -nodes N the clusters are partitioned across N OS processes (forked
// automatically) exchanging wire frames over loopback TCP; serve -peers runs
// one such node process by hand, e.g. on separate machines.  Without -peers,
// serve is the multi-tenant daemon: programs are POSTed to /programs over
// HTTP and run as isolated quota-bounded sessions sharing one compile cache;
// loadgen drives such a daemon and reports throughput and latency.
//
// Examples:
//
//	pisces -clusters 4 -slots 4 -show            # show the configuration and exit
//	pisces -config section9 -script run.txt      # run a scripted session
//	pisces -clusters 2 -slots 2                  # interactive session
//	pisces run examples/sumsq.pf                 # interpret a .pf program
//	pisces run -forces 7,8 -stats examples/sumsq.pf
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	pisces "repro"
	"repro/internal/config"
	"repro/internal/node"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "run" {
		if err := runInterpreted(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pisces: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		// Two personalities share the verb: with -peers this process is one
		// node of a distributed mesh run; without it, the multi-tenant
		// serving daemon.
		serveFn := runDaemon
		if meshMode(os.Args[2:]) {
			serveFn = runServe
		}
		if err := serveFn(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pisces: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "blackbox" {
		if err := runBlackbox(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pisces: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		if err := runLoadgen(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pisces: %v\n", err)
			os.Exit(1)
		}
		return
	}
	configPath := flag.String("config", "", "configuration file to load, or the name \"section9\"")
	clusters := flag.Int("clusters", 2, "number of clusters (when not loading a configuration)")
	slots := flag.Int("slots", 4, "user-task slots per cluster")
	forces := flag.String("forces", "", "comma-separated secondary PEs for cluster 1 forces")
	traceEvents := flag.String("trace", "", "comma-separated trace events to enable (e.g. MSG-SEND,FORCE-SPLIT)")
	save := flag.String("save", "", "save the configuration to this file and exit")
	show := flag.Bool("show", false, "print the configuration summary and exit")
	script := flag.String("script", "", "read execution-environment commands from this file instead of stdin")
	menu := flag.Bool("menu", false, "build the configuration interactively through the configuration-environment menus")
	flag.Parse()

	if err := run(*configPath, *clusters, *slots, *forces, *traceEvents, *save, *show, *menu, *script); err != nil {
		fmt.Fprintf(os.Stderr, "pisces: %v\n", err)
		os.Exit(1)
	}
}

func run(configPath string, clusters, slots int, forces, traceEvents, save string, show, menu bool, script string) error {
	var cfg *pisces.Configuration
	var err error
	if menu {
		builder := config.NewBuilder(pisces.FlexDefaultConfig(), os.Stdin, os.Stdout)
		cfg, err = builder.Build("menu")
	} else {
		cfg, err = buildConfiguration(configPath, clusters, slots, forces, traceEvents)
	}
	if err != nil {
		return err
	}

	if show {
		fmt.Print(cfg.String())
		return nil
	}
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cfg.Save(f); err != nil {
			return err
		}
		fmt.Printf("configuration saved to %s\n", save)
		return nil
	}

	vm, err := pisces.NewVM(cfg, pisces.Options{UserOutput: os.Stdout})
	if err != nil {
		return err
	}
	defer vm.Shutdown()
	registerDemoTasks(vm)

	env := pisces.NewEnvironment(vm, os.Stdout)
	fmt.Print(cfg.String())
	fmt.Print(pisces.ExecMenu())

	if script != "" {
		f, err := os.Open(script)
		if err != nil {
			return err
		}
		defer f.Close()
		return env.Repl(f, false)
	}
	return env.Repl(os.Stdin, true)
}

// runInterpreted implements "pisces run [flags] <program.pf>": boot a VM and
// interpret the Pisces Fortran program on it.  Under -sim, a deadlocked
// schedule surfaces as an error naming the seed instead of a panic.
func runInterpreted(args []string, out io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if d, ok := r.(*pisces.SimDeadlock); ok {
				err = fmt.Errorf("deterministic run stuck: %v (replay with -sim -seed %d)", d, d.Seed)
				return
			}
			panic(r)
		}
	}()
	return runInterpretedInner(args, out)
}

func runInterpretedInner(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pisces run", flag.ContinueOnError)
	clusters := fs.Int("clusters", 2, "number of clusters")
	slots := fs.Int("slots", 4, "user-task slots per cluster")
	forces := fs.String("forces", "", "comma-separated secondary PEs for cluster 1 forces")
	traceEvents := fs.String("trace", "", "comma-separated trace events to enable")
	mainTT := fs.String("main", "", "entry tasktype (default MAIN, else the first tasktype)")
	showStats := fs.Bool("stats", false, "print the interpreter activity counters and runtime metric histograms after the run")
	traceOut := fs.String("trace-out", "",
		"write runtime spans (task execution, router lane delivery, wire frames) to this file as Chrome trace-event JSON; open in Perfetto or chrome://tracing")
	blackboxOut := fs.String("blackbox-out", "",
		"write a flight-recorder dump into this directory when the run fails (limit violation, sim deadlock)")
	repeat := fs.Int("repeat", 1, "run the program this many times on the same VM (compiled once)")
	simMode := fs.Bool("sim", false,
		"run on the deterministic simulation scheduler: one task at a time, seeded interleaving, virtual clock")
	seed := fs.Int64("seed", 0, "PRNG seed for -sim and -netfault; the same seed reproduces the run exactly")
	nodes := fs.Int("nodes", 1,
		"run distributed: partition the clusters across this many OS processes (forked automatically) over loopback TCP")
	netfault := fs.Bool("netfault", false,
		"inject deterministic seeded latency and retransmission faults on every cross-cluster message (combine with -sim for byte-reproducible network schedules)")
	acceptTimeout := fs.Duration("accept-timeout", 30*time.Second,
		"system-provided timeout for ACCEPT statements without a DELAY clause")
	wire := addWireFlags(fs) // batched wire path knobs; -nodes runs only
	ha := addHAFlags(fs)     // fault-tolerant mesh knobs; -nodes runs only
	// The FlagSet's own printing is suppressed so parse errors surface exactly
	// once (through main's error path) and -h exits 0 with the usage text.
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}
	if *acceptTimeout <= 0 {
		return fmt.Errorf("-accept-timeout must be positive")
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat must be at least 1")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: pisces run [flags] <program.pf>")
	}
	if *nodes > 1 {
		// Distributed mode is a different execution path: real processes and
		// real sockets, so the single-process-only conveniences are refused
		// rather than silently ignored.
		switch {
		case *simMode || *netfault:
			return fmt.Errorf("-nodes is incompatible with -sim and -netfault (they model the network in one process)")
		case *repeat != 1:
			return fmt.Errorf("-nodes does not support -repeat")
		case *traceEvents != "":
			return fmt.Errorf("-nodes does not support -trace (trace events are per node)")
		}
		if err := ha.validate(); err != nil {
			return err
		}
		return runDistributed(*nodes, *clusters, *slots, *forces, *mainTT, *showStats, *traceOut, *blackboxOut, *acceptTimeout, wire, ha, fs.Arg(0), out)
	}
	if *ha.enabled {
		return fmt.Errorf("-ha requires -nodes (fault tolerance spans node processes)")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg, err := buildConfiguration("", *clusters, *slots, *forces, *traceEvents)
	if err != nil {
		return err
	}
	// The observability registry travels through the VM to every layer of the
	// message path; enabling is per-concern so -stats alone pays no span cost
	// and -trace-out alone pays no histogram cost.
	reg := obs.New()
	if *showStats {
		reg.Enable(obs.Metrics)
	}
	if *traceOut != "" {
		reg.Enable(obs.Spans)
	}
	// The flight recorder is always on: Record is a few atomics, and a dump
	// only reaches disk when -blackbox-out names a directory and the run
	// fails.  Under -sim the recorder inherits the virtual clock, so dumps
	// are byte-stable per seed.
	rec := obs.NewRecorder(0, 0, 0)
	opts := pisces.Options{
		UserOutput:     out,
		AcceptTimeout:  *acceptTimeout,
		Metrics:        reg,
		FlightRecorder: rec,
		FailureSink:    func(reason string) { dumpRecorder(*blackboxOut, rec, out, reason) },
	}
	defer func() {
		// A deadlocked -sim schedule panics out of prog.Run; capture the
		// recorder's view of the stuck run before the outer handler turns
		// the panic into an error.
		if r := recover(); r != nil {
			if _, ok := r.(*pisces.SimDeadlock); ok {
				dumpRecorder(*blackboxOut, rec, out, "sim deadlock")
			}
			panic(r)
		}
	}()
	if *simMode {
		opts.Backend = pisces.NewSimScheduler(*seed)
	} else if *seed != 0 && !*netfault {
		return fmt.Errorf("-seed only applies with -sim or -netfault")
	}
	var fault *node.FaultTransport
	if *netfault {
		fault = node.NewFaultTransport(*seed, node.DefaultFaultProfile())
		opts.Remote = fault
		opts.InterceptWire = true
	}
	if *traceEvents != "" {
		// Enabled trace kinds display on the user's terminal (Section 12).
		// Trace events are emitted from task goroutines concurrently with
		// terminal output, so both go through one serialised writer.
		sw := &syncWriter{w: out}
		opts.UserOutput = sw
		opts.TraceSinks = []pisces.TraceSink{pisces.WriterTraceSink{W: sw}}
	}
	vm, err := pisces.NewVM(cfg, opts)
	if err != nil {
		return err
	}
	defer vm.Shutdown()
	if fault != nil {
		fault.Bind(vm)
	}
	// Compile once through an explicit per-invocation cache handle — the CLI
	// never benefits from process-wide memoisation (each invocation is a new
	// process) and the -repeat loop reuses the compiled program directly, so
	// nothing this command compiles can leak into any shared cache.  The
	// activity counters accumulate across runs.
	prog, err := pisces.NewCompileCache(0).Compile(string(src))
	if err != nil {
		return err
	}
	for i := 0; i < *repeat && err == nil; i++ {
		err = prog.Run(vm, pisces.InterpretOptions{Main: *mainTT})
	}
	if *showStats {
		printRunStats(out, prog, vm)
		printMetricsTables(out, reg.Snapshot(), "runtime metrics")
	}
	if *traceOut != "" {
		if werr := writeTraceFile(*traceOut, reg); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// dumpRecorder writes a flight-recorder dump into dir (when set), reporting
// the path or the failure on out.  Safe to call from VM-internal goroutines.
func dumpRecorder(dir string, rec *obs.Recorder, out io.Writer, reason string) {
	if dir == "" {
		return
	}
	if path, err := obs.WriteDump(dir, rec); err != nil {
		fmt.Fprintf(out, "pisces: blackbox dump (%s) failed: %v\n", reason, err)
	} else {
		fmt.Fprintf(out, "pisces: blackbox dump (%s): %s\n", reason, path)
	}
}

// writeTraceFile dumps the registry's captured spans as Chrome trace-event
// JSON.  An existing file is never clobbered: the path rotates to path.1,
// path.2, ... (same policy as recorder dumps).
func writeTraceFile(path string, reg *obs.Registry) error {
	f, err := os.Create(obs.UniquePath(path))
	if err != nil {
		return err
	}
	if err := reg.WriteChromeTrace(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// syncWriter serialises concurrent writers (trace sinks, the user
// controller) onto one underlying writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func buildConfiguration(configPath string, clusters, slots int, forces, traceEvents string) (*pisces.Configuration, error) {
	var cfg *pisces.Configuration
	switch {
	case configPath == "section9":
		cfg = pisces.Section9Configuration()
	case configPath != "":
		f, err := os.Open(configPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		cfg, err = pisces.LoadConfiguration(f)
		if err != nil {
			return nil, err
		}
	default:
		cfg = pisces.SimpleConfiguration(clusters, slots)
		if forces != "" {
			var pes []int
			for _, s := range strings.Split(forces, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					return nil, fmt.Errorf("bad -forces value %q", s)
				}
				pes = append(pes, n)
			}
			cfg = cfg.WithForces(1, pes...)
		}
	}
	if traceEvents != "" {
		for _, ev := range strings.Split(traceEvents, ",") {
			cfg.TraceEvents = append(cfg.TraceEvents, strings.ToUpper(strings.TrimSpace(ev)))
		}
	}
	return cfg, nil
}

// registerDemoTasks registers a few tasktypes so interactive sessions have
// something to initiate: a greeter, a worker that reports to its parent, and
// a force-based summation.
func registerDemoTasks(vm *pisces.VM) {
	vm.Register("hello", func(t *pisces.Task) {
		t.Printf("hello from task %s in cluster %d\n", t.ID(), t.Cluster())
	})
	vm.Register("spawner", func(t *pisces.Task) {
		for i := 0; i < 3; i++ {
			if err := t.Initiate(pisces.Other(), "hello"); err != nil {
				t.Printf("spawner: %v\n", err)
				if err := t.Initiate(pisces.Same(), "hello"); err != nil {
					t.Printf("spawner: %v\n", err)
				}
			}
		}
	})
	vm.Register("force-sum", func(t *pisces.Task) {
		n := int64(100000)
		if len(t.Args()) > 0 {
			if v, err := pisces.AsInt(t.Arg(0)); err == nil {
				n = v
			}
		}
		common, err := t.NewSharedCommon("sum", 1, 0)
		if err != nil {
			t.Printf("force-sum: %v\n", err)
			return
		}
		lock, err := t.NewLock("sumlk")
		if err != nil {
			t.Printf("force-sum: %v\n", err)
			return
		}
		err = t.ForceSplit(func(m *pisces.ForceMember) {
			local := 0.0
			m.Presched(1, int(n), 1, func(i int) { local += float64(i) })
			m.Critical(lock, func() { common.SetReal(0, common.Real(0)+local) })
		})
		if err != nil {
			t.Printf("force-sum: %v\n", err)
			return
		}
		t.Printf("force-sum: sum of 1..%d = %.0f\n", n, common.Real(0))
	})
}
