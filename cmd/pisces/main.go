// Command pisces is the PISCES 2 configuration and execution environment
// (paper, Sections 9 and 11).  It builds or loads a configuration (the
// mapping of the virtual machine onto the simulated FLEX/32), boots the
// virtual machine with a set of built-in demonstration tasktypes, and then
// enters the menu-driven execution environment where tasks can be initiated,
// killed, sent messages, and inspected.
//
// Usage:
//
//	pisces [-config file] [-clusters n] [-slots k] [-forces "7,8,9"]
//	       [-trace events] [-save file] [-show] [-script file]
//
// Examples:
//
//	pisces -clusters 4 -slots 4 -show            # show the configuration and exit
//	pisces -config section9 -script run.txt      # run a scripted session
//	pisces -clusters 2 -slots 2                  # interactive session
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	pisces "repro"
	"repro/internal/config"
)

func main() {
	configPath := flag.String("config", "", "configuration file to load, or the name \"section9\"")
	clusters := flag.Int("clusters", 2, "number of clusters (when not loading a configuration)")
	slots := flag.Int("slots", 4, "user-task slots per cluster")
	forces := flag.String("forces", "", "comma-separated secondary PEs for cluster 1 forces")
	traceEvents := flag.String("trace", "", "comma-separated trace events to enable (e.g. MSG-SEND,FORCE-SPLIT)")
	save := flag.String("save", "", "save the configuration to this file and exit")
	show := flag.Bool("show", false, "print the configuration summary and exit")
	script := flag.String("script", "", "read execution-environment commands from this file instead of stdin")
	menu := flag.Bool("menu", false, "build the configuration interactively through the configuration-environment menus")
	flag.Parse()

	if err := run(*configPath, *clusters, *slots, *forces, *traceEvents, *save, *show, *menu, *script); err != nil {
		fmt.Fprintf(os.Stderr, "pisces: %v\n", err)
		os.Exit(1)
	}
}

func run(configPath string, clusters, slots int, forces, traceEvents, save string, show, menu bool, script string) error {
	var cfg *pisces.Configuration
	var err error
	if menu {
		builder := config.NewBuilder(pisces.FlexDefaultConfig(), os.Stdin, os.Stdout)
		cfg, err = builder.Build("menu")
	} else {
		cfg, err = buildConfiguration(configPath, clusters, slots, forces, traceEvents)
	}
	if err != nil {
		return err
	}

	if show {
		fmt.Print(cfg.String())
		return nil
	}
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cfg.Save(f); err != nil {
			return err
		}
		fmt.Printf("configuration saved to %s\n", save)
		return nil
	}

	vm, err := pisces.NewVM(cfg, pisces.Options{UserOutput: os.Stdout})
	if err != nil {
		return err
	}
	defer vm.Shutdown()
	registerDemoTasks(vm)

	env := pisces.NewEnvironment(vm, os.Stdout)
	fmt.Print(cfg.String())
	fmt.Print(pisces.ExecMenu())

	if script != "" {
		f, err := os.Open(script)
		if err != nil {
			return err
		}
		defer f.Close()
		return env.Repl(f, false)
	}
	return env.Repl(os.Stdin, true)
}

func buildConfiguration(configPath string, clusters, slots int, forces, traceEvents string) (*pisces.Configuration, error) {
	var cfg *pisces.Configuration
	switch {
	case configPath == "section9":
		cfg = pisces.Section9Configuration()
	case configPath != "":
		f, err := os.Open(configPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		cfg, err = pisces.LoadConfiguration(f)
		if err != nil {
			return nil, err
		}
	default:
		cfg = pisces.SimpleConfiguration(clusters, slots)
		if forces != "" {
			var pes []int
			for _, s := range strings.Split(forces, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					return nil, fmt.Errorf("bad -forces value %q", s)
				}
				pes = append(pes, n)
			}
			cfg = cfg.WithForces(1, pes...)
		}
	}
	if traceEvents != "" {
		for _, ev := range strings.Split(traceEvents, ",") {
			cfg.TraceEvents = append(cfg.TraceEvents, strings.ToUpper(strings.TrimSpace(ev)))
		}
	}
	return cfg, nil
}

// registerDemoTasks registers a few tasktypes so interactive sessions have
// something to initiate: a greeter, a worker that reports to its parent, and
// a force-based summation.
func registerDemoTasks(vm *pisces.VM) {
	vm.Register("hello", func(t *pisces.Task) {
		t.Printf("hello from task %s in cluster %d\n", t.ID(), t.Cluster())
	})
	vm.Register("spawner", func(t *pisces.Task) {
		for i := 0; i < 3; i++ {
			if err := t.Initiate(pisces.Other(), "hello"); err != nil {
				t.Printf("spawner: %v\n", err)
				if err := t.Initiate(pisces.Same(), "hello"); err != nil {
					t.Printf("spawner: %v\n", err)
				}
			}
		}
	})
	vm.Register("force-sum", func(t *pisces.Task) {
		n := int64(100000)
		if len(t.Args()) > 0 {
			if v, err := pisces.AsInt(t.Arg(0)); err == nil {
				n = v
			}
		}
		common, err := t.NewSharedCommon("sum", 1, 0)
		if err != nil {
			t.Printf("force-sum: %v\n", err)
			return
		}
		lock, err := t.NewLock("sumlk")
		if err != nil {
			t.Printf("force-sum: %v\n", err)
			return
		}
		err = t.ForceSplit(func(m *pisces.ForceMember) {
			local := 0.0
			m.Presched(1, int(n), 1, func(i int) { local += float64(i) })
			m.Critical(lock, func() { common.SetReal(0, common.Real(0)+local) })
		})
		if err != nil {
			t.Printf("force-sum: %v\n", err)
			return
		}
		t.Printf("force-sum: sum of 1..%d = %.0f\n", n, common.Real(0))
	})
}
