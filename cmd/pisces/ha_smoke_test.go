package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// haSmokeSource mirrors the in-process HA kill test's program (see
// internal/node/ha_test.go): timed workers on every cluster, an
// arrival-order-independent total, and enough wall-clock runtime for a
// checkpoint to cut and the failure detector to fire before the work is done.
const haSmokeSource = `
TASKTYPE MAIN
      INTEGER W, NW
      INTEGER TOTAL
      SIGNAL RES
      NW = 6
      ON CLUSTER 3 INITIATE STEPPER(1)
      ON CLUSTER 3 INITIATE STEPPER(2)
      ON CLUSTER 2 INITIATE STEPPER(3)
      ON CLUSTER 2 INITIATE STEPPER(4)
      ON CLUSTER 1 INITIATE STEPPER(5)
      ON CLUSTER 3 INITIATE STEPPER(6)
      ACCEPT NW OF RES
      TOTAL = 0
      DO 20 W = 1, NW
        TOTAL = TOTAL + MSGI('RES', W, 1)
20    CONTINUE
      PRINT *, 'TOTAL', TOTAL
END TASKTYPE

TASKTYPE STEPPER(ME)
      INTEGER ME
      INTEGER I, ACC
      SIGNAL TICK
      ACC = 0
      DO 10 I = 1, 12
        ACC = ACC + ME * I
        ACCEPT 1 OF
          TICK
        DELAY 0.05 THEN
          ACC = ACC + 0
        END ACCEPT
10    CONTINUE
      TO PARENT SEND RES(ACC)
END TASKTYPE
`

// syncBuffer is a strings.Builder safe to share between an exec.Cmd's output
// pipe goroutine and the test's polling loop.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestHASmokeKillANodeProcess is the whole-system acceptance for the
// fault-tolerant mesh: three REAL pisces serve processes over loopback TCP,
// node 2 SIGKILLed mid-run, and node 0's stdout must still be byte-identical
// to the single-process run.  Gated behind PISCES_HA_SMOKE because it builds
// the binary and forks OS processes; CI runs it in the ha-smoke job.  When
// PISCES_HA_TRACE names a file, node 0 additionally writes its span trace
// (including the HA recovery spans) there for artifact upload.
func TestHASmokeKillANodeProcess(t *testing.T) {
	if os.Getenv("PISCES_HA_SMOKE") == "" {
		t.Skip("set PISCES_HA_SMOKE=1 to build the binary and fork a killable 3-process mesh")
	}
	bin := buildPisces(t)
	prog := filepath.Join(t.TempDir(), "hasmoke.pf")
	if err := os.WriteFile(prog, []byte(haSmokeSource), 0o644); err != nil {
		t.Fatal(err)
	}
	single := runBinary(t, bin, "run", "-clusters", "3", prog)
	if !strings.Contains(single, "TOTAL") {
		t.Fatalf("single-process reference output unexpected:\n%s", single)
	}

	// Reserve one loopback port per node (closed and re-bound by the serve
	// processes, same approach as pisces run -nodes).
	addrs := make([]string, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		_ = ln.Close()
	}
	peers := strings.Join(addrs, ",")

	var stdout [3]syncBuffer
	var stderr [3]syncBuffer
	cmds := make([]*exec.Cmd, 3)
	for i := range cmds {
		args := []string{"serve",
			"-node", fmt.Sprint(i), "-peers", peers,
			"-clusters", "3", "-ha",
			"-checkpoint-interval", "50ms",
		}
		if bb := os.Getenv("PISCES_HA_BLACKBOX"); bb != "" {
			args = append(args, "-blackbox-out", bb)
		}
		if i == 0 {
			if tr := os.Getenv("PISCES_HA_TRACE"); tr != "" {
				args = append(args, "-trace-out", tr)
			}
		}
		args = append(args, prog)
		cmds[i] = exec.Command(bin, args...)
		cmds[i].Stdout = &stdout[i]
		cmds[i].Stderr = &stderr[i]
	}
	// Followers first, coordinator last; start order does not matter (the
	// mesh handshake retries) but this keeps the logs tidy.
	for i := 2; i >= 0; i-- {
		if err := cmds[i].Start(); err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, c := range cmds {
			if c.Process != nil {
				_ = c.Process.Kill()
			}
		}
	})

	// Wait for node 2 to join the mesh, give the run a few checkpoints, then
	// kill it the way a crashed machine would die: no drain, no goodbye.
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(stderr[2].String(), "node 2 up") {
		if time.Now().After(deadline) {
			t.Fatalf("node 2 never joined the mesh\nstderr:\n%s", stderr[2].String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(250 * time.Millisecond)
	if err := cmds[2].Process.Kill(); err != nil {
		t.Fatalf("killing node 2: %v", err)
	}
	_ = cmds[2].Wait() // reap; a kill error is the expected exit

	exit := make(chan error, 1)
	go func() { exit <- cmds[0].Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("node 0: %v\nstdout:\n%s\nstderr:\n%s", err, stdout[0].String(), stderr[0].String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("node 0 did not finish after the kill\nstdout:\n%s\nstderr:\n%s", stdout[0].String(), stderr[0].String())
	}
	if err := cmds[1].Wait(); err != nil {
		t.Errorf("node 1: %v\nstderr:\n%s", err, stderr[1].String())
	}

	if got := stdout[0].String(); got != single {
		t.Fatalf("killed-node mesh output diverges from single-process:\n--- got ---\n%s--- want ---\n%s--- node 0 stderr ---\n%s--- node 1 stderr ---\n%s",
			got, single, stderr[0].String(), stderr[1].String())
	}
	// The kill must have been survived, not merely missed: node 0 is node 2's
	// checkpoint buddy and must have logged the completed rebalance.
	if !strings.Contains(stderr[0].String(), "rerouted node 2's clusters to node 0") {
		t.Errorf("node 0 never rebalanced; the kill landed after the run finished.\nstderr:\n%s", stderr[0].String())
	}
	if tr := os.Getenv("PISCES_HA_TRACE"); tr != "" {
		if st, err := os.Stat(tr); err != nil || st.Size() == 0 {
			t.Errorf("PISCES_HA_TRACE=%s: trace artifact missing or empty (err=%v)", tr, err)
		}
	}
	// Failure forensics end to end: the survivor's rebalance dumped a flight
	// recorder into PISCES_HA_BLACKBOX, and the binary's own blackbox
	// subcommand must decode (and, with several dumps, merge) it — the same
	// path an operator walks after a real node death.
	if bb := os.Getenv("PISCES_HA_BLACKBOX"); bb != "" {
		entries, err := os.ReadDir(bb)
		if err != nil {
			t.Fatalf("PISCES_HA_BLACKBOX=%s: %v", bb, err)
		}
		var dumps []string
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "blackbox-") {
				dumps = append(dumps, filepath.Join(bb, e.Name()))
			}
		}
		if len(dumps) == 0 {
			t.Fatalf("PISCES_HA_BLACKBOX=%s: no dumps written\nnode 0 stderr:\n%s", bb, stderr[0].String())
		}
		decoded := runBinary(t, bin, append([]string{"blackbox"}, dumps...)...)
		if !strings.Contains(decoded, "checkpoint") || !strings.Contains(decoded, "heartbeat-miss") {
			t.Errorf("blackbox decode of %v lacks the recovery story:\n%s", dumps, decoded)
		}
		if err := os.WriteFile(filepath.Join(bb, "decoded.txt"), []byte(decoded), 0o644); err != nil {
			t.Errorf("writing decoded artifact: %v", err)
		}
	}
}
