package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// loadgenSrc is the default workload: a spawn, a message round trip and a
// little arithmetic, so every submission exercises the full session path
// (compile cache, VM boot, scheduling, reap) without being a pure no-op.
const loadgenSrc = `TASKTYPE MAIN
      INTEGER I, J
      SIGNAL RESULT
      ON ANY INITIATE WORKER(3)
      J = 0
      DO 10 I = 1, 100
        J = J + I
10    CONTINUE
      ACCEPT 1 OF RESULT
      PRINT *, 'SUM', J, MSGI('RESULT', 1, 1)
END TASKTYPE

TASKTYPE WORKER(ME)
      INTEGER ME
      TO PARENT SEND RESULT(ME * ME)
END TASKTYPE
`

// runLoadgen implements "pisces loadgen -addr host:port [-tenants N]
// [-duration D]": closed-loop load against a serving daemon.  Each simulated
// tenant submits a program, waits for completion via the blocking output
// endpoint, and repeats until the duration elapses; the report gives
// throughput and submit-to-complete latency quantiles.
func runLoadgen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pisces loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "", "daemon address (host:port) to load")
	tenants := fs.Int("tenants", 8, "concurrent closed-loop tenants")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	program := fs.String("program", "", "submit this .pf file instead of the built-in workload")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}
	if *addr == "" {
		return fmt.Errorf("usage: pisces loadgen -addr host:port [-tenants N] [-duration D]")
	}
	if *tenants < 1 {
		return fmt.Errorf("-tenants must be at least 1")
	}
	src := loadgenSrc
	if *program != "" {
		b, err := os.ReadFile(*program)
		if err != nil {
			return err
		}
		src = string(b)
	}
	base := "http://" + *addr

	type tally struct {
		completed, failed, rejected int
		latencies                   []time.Duration
	}
	results := make([]tally, *tenants)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{Timeout: 90 * time.Second}
			tenant := fmt.Sprintf("loadgen-%d", i)
			for time.Now().Before(deadline) {
				start := time.Now()
				id, status, err := submitProgram(client, base, tenant, src)
				if err != nil {
					results[i].failed++
					continue
				}
				if status != http.StatusAccepted {
					// Admission pushback (429/503): back off briefly.
					results[i].rejected++
					time.Sleep(5 * time.Millisecond)
					continue
				}
				state, err := waitProgram(client, base, id)
				if err != nil || state != "done" {
					results[i].failed++
					continue
				}
				results[i].completed++
				results[i].latencies = append(results[i].latencies, time.Since(start))
			}
		}(i)
	}
	wg.Wait()

	var total tally
	for _, r := range results {
		total.completed += r.completed
		total.failed += r.failed
		total.rejected += r.rejected
		total.latencies = append(total.latencies, r.latencies...)
	}
	if total.failed > 0 {
		return fmt.Errorf("loadgen: %d of %d submissions failed", total.failed, total.completed+total.failed)
	}
	sort.Slice(total.latencies, func(a, b int) bool { return total.latencies[a] < total.latencies[b] })
	fmt.Fprintf(out, "loadgen: %d tenants, %v\n", *tenants, *duration)
	fmt.Fprintf(out, "  completed  %d (%.1f programs/s)\n", total.completed, float64(total.completed)/duration.Seconds())
	fmt.Fprintf(out, "  rejected   %d (admission pushback)\n", total.rejected)
	if n := len(total.latencies); n > 0 {
		q := func(p float64) time.Duration {
			idx := int(p * float64(n-1))
			return total.latencies[idx].Round(time.Microsecond)
		}
		fmt.Fprintf(out, "  latency    p50 %v  p95 %v  p99 %v  max %v\n",
			q(0.50), q(0.95), q(0.99), total.latencies[n-1].Round(time.Microsecond))
	}
	return nil
}

// submitProgram POSTs one program and returns the session id and HTTP code.
func submitProgram(client *http.Client, base, tenant, src string) (string, int, error) {
	body, _ := json.Marshal(map[string]string{"tenant": tenant, "source": src})
	resp, err := client.Post(base+"/programs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		_, _ = io.Copy(io.Discard, resp.Body)
		return "", resp.StatusCode, nil
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", resp.StatusCode, err
	}
	return st.ID, resp.StatusCode, nil
}

// waitProgram blocks on the output endpoint until the session finishes, then
// fetches its terminal state.
func waitProgram(client *http.Client, base, id string) (string, error) {
	resp, err := client.Get(base + "/programs/" + id + "/output?wait=1")
	if err != nil {
		return "", err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	sresp, err := client.Get(base + "/programs/" + id + "/status")
	if err != nil {
		return "", err
	}
	defer sresp.Body.Close()
	var st struct {
		State string `json:"state"`
	}
	err = json.NewDecoder(sresp.Body).Decode(&st)
	return st.State, err
}
