package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildPisces compiles the pisces binary once per test run so the smoke
// tests below spawn REAL node processes, not in-process goroutine stand-ins.
func buildPisces(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pisces")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building pisces: %v\n%s", err, out)
	}
	return bin
}

// runBinary runs the built binary with a hard timeout, returning stdout.
func runBinary(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%v: %v\nstdout:\n%s\nstderr:\n%s", args, err, stdout.String(), stderr.String())
		}
	case <-time.After(90 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("%v: timed out\nstdout:\n%s\nstderr:\n%s", args, stdout.String(), stderr.String())
	}
	return stdout.String()
}

// TestMultiProcessSmoke is the multi-process acceptance smoke test: "pisces
// run -nodes 2" forks a real follower OS process, carries the cross-cluster
// traffic over loopback TCP, and must produce byte-identical user output to
// the single-process run — for the crosscluster corpus program (taskid,
// window, and array arguments over the wire) and for examples/sumsq.pf.
func TestMultiProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and forks real node processes")
	}
	bin := buildPisces(t)
	for _, prog := range []string{
		filepath.Join("..", "..", "internal", "conformance", "corpus", "crosscluster.pf"),
		filepath.Join("..", "..", "examples", "sumsq.pf"),
	} {
		prog := prog
		t.Run(filepath.Base(prog), func(t *testing.T) {
			single := runBinary(t, bin, "run", prog)
			if single == "" {
				t.Fatalf("single-process run of %s produced no output", prog)
			}
			dist := runBinary(t, bin, "run", "-nodes", "2", prog)
			if dist != single {
				t.Fatalf("distributed output differs from single-process:\n--- single ---\n%s--- distributed ---\n%s", single, dist)
			}
		})
	}
}

// TestMultiProcessThreeNodes spreads three clusters over three processes.
func TestMultiProcessThreeNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and forks real node processes")
	}
	bin := buildPisces(t)
	prog := filepath.Join("..", "..", "examples", "sumsq.pf")
	single := runBinary(t, bin, "run", "-clusters", "3", prog)
	dist := runBinary(t, bin, "run", "-clusters", "3", "-nodes", "3", prog)
	if dist != single {
		t.Fatalf("3-node output differs:\n--- single ---\n%s--- distributed ---\n%s", single, dist)
	}
}
