package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildPisces compiles the pisces binary once per test run so the smoke
// tests below spawn REAL node processes, not in-process goroutine stand-ins.
func buildPisces(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pisces")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building pisces: %v\n%s", err, out)
	}
	return bin
}

// runBinary runs the built binary with a hard timeout, returning stdout.
func runBinary(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%v: %v\nstdout:\n%s\nstderr:\n%s", args, err, stdout.String(), stderr.String())
		}
	case <-time.After(90 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("%v: timed out\nstdout:\n%s\nstderr:\n%s", args, stdout.String(), stderr.String())
	}
	return stdout.String()
}

// TestMultiProcessSmoke is the multi-process acceptance smoke test: "pisces
// run -nodes 2" forks a real follower OS process, carries the cross-cluster
// traffic over loopback TCP, and must produce byte-identical user output to
// the single-process run — for the crosscluster corpus program (taskid,
// window, and array arguments over the wire) and for examples/sumsq.pf.
func TestMultiProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and forks real node processes")
	}
	bin := buildPisces(t)
	for _, prog := range []string{
		filepath.Join("..", "..", "internal", "conformance", "corpus", "crosscluster.pf"),
		filepath.Join("..", "..", "examples", "sumsq.pf"),
	} {
		prog := prog
		t.Run(filepath.Base(prog), func(t *testing.T) {
			single := runBinary(t, bin, "run", prog)
			if single == "" {
				t.Fatalf("single-process run of %s produced no output", prog)
			}
			dist := runBinary(t, bin, "run", "-nodes", "2", prog)
			if dist != single {
				t.Fatalf("distributed output differs from single-process:\n--- single ---\n%s--- distributed ---\n%s", single, dist)
			}
		})
	}
}

// TestMultiProcessObservability is the observability acceptance test for
// distributed runs: "pisces run -nodes 2 -stats" prints ONE merged
// cluster-wide metric view that includes the followers' piggybacked
// snapshots (labelled per node with its hosted clusters, with both ends of
// every wire lane), and -trace-out produces a valid Chrome trace with spans
// from at least three layers: pfi task execution, router lane delivery, and
// node transport.
func TestMultiProcessObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and forks real node processes")
	}
	bin := buildPisces(t)
	prog := filepath.Join("..", "..", "examples", "sumsq.pf")
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	out := runBinary(t, bin, "run", "-nodes", "2", "-stats", "-trace-out", traceFile, prog)
	for _, want := range []string{
		"mesh runtime metrics: node 0 (clusters [1]), node 1 (clusters [2])",
		"node.tx.n0->n1.frames", "node.rx.n1->n0.frames",
		"node.tx.n1->n0.bytes", "node.batch.write.ns", "node.batch.frames", "pfi.stmt.ns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("distributed -stats output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-trace-out file is not valid JSON: %v", err)
	}
	layers := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			continue
		}
		switch lane := e.Args.Name; {
		case strings.HasPrefix(lane, "pfi/"):
			layers["pfi"] = true
		case strings.HasPrefix(lane, "router/"):
			layers["router"] = true
		case strings.HasPrefix(lane, "node/"):
			layers["node"] = true
		}
	}
	for _, l := range []string{"pfi", "router", "node"} {
		if !layers[l] {
			t.Errorf("trace file has no spans from the %s layer (lanes: %v)", l, layers)
		}
	}
}

// TestMultiProcessThreeNodes spreads three clusters over three processes.
func TestMultiProcessThreeNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and forks real node processes")
	}
	bin := buildPisces(t)
	prog := filepath.Join("..", "..", "examples", "sumsq.pf")
	single := runBinary(t, bin, "run", "-clusters", "3", prog)
	dist := runBinary(t, bin, "run", "-clusters", "3", "-nodes", "3", prog)
	if dist != single {
		t.Fatalf("3-node output differs:\n--- single ---\n%s--- distributed ---\n%s", single, dist)
	}
}
