package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Serving mode.
//
// "pisces serve" without -peers is the multi-tenant daemon: one long-running
// process that accepts Pisces Fortran programs over HTTP, runs each as an
// isolated session (own VM, own heap shards, own resource quota) on a shared
// worker pool, compiles through one cache shared across tenants, and exposes
// the daemon-wide metric view — its own serve.* series plus every session's
// registry under a tenant.<id>. prefix — on the same listener.  With -peers
// it remains one node of a distributed mesh run (see serve.go).

// meshMode reports whether the serve args select mesh-node mode (-peers
// present): the mesh form always requires the peer list, so its presence is
// the dispatch signal between the two serve personalities.
func meshMode(args []string) bool {
	for _, a := range args {
		switch {
		case a == "-peers" || a == "--peers":
			return true
		case len(a) > 7 && (a[:7] == "-peers=" || (len(a) > 8 && a[:8] == "--peers=")):
			return true
		}
	}
	return false
}

// parseForces parses the comma-separated secondary-PE list of -forces.
func parseForces(s string) ([]int, error) {
	var pes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -forces value %q", part)
		}
		pes = append(pes, n)
	}
	return pes, nil
}

// runDaemon implements "pisces serve [flags]" (no -peers): the serving
// daemon.  It prints the bound address to out, serves until SIGTERM/SIGINT,
// then drains: admission stops, queued and running sessions finish.
func runDaemon(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pisces serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8307", "HTTP listen address for program submission and observability")
	clusters := fs.Int("clusters", 2, "clusters per session VM")
	slots := fs.Int("slots", 8, "user-task slots per cluster")
	forces := fs.String("forces", "7,8", "comma-separated secondary PEs for cluster 1 forces (empty = no forces)")
	maxPrograms := fs.Int("max-programs", 4, "sessions running concurrently (worker-pool size)")
	queueDepth := fs.Int("queue-depth", 64, "admission queue bound; submissions past it get HTTP 429")
	cacheBytes := fs.Int64("cache-bytes", 0, "compile cache weight bound in bytes shared by all tenants (0 = 16MiB)")
	limitHeap := fs.Int64("limit-heap-bytes", 0, "default per-session heap quota in bytes (0 = unlimited)")
	limitTasks := fs.Int64("limit-tasks", 0, "default per-session cap on initiated tasks (0 = unlimited)")
	limitWall := fs.Duration("limit-wallclock", 0, "default per-session wall-clock budget (0 = unlimited)")
	limitOutput := fs.Int64("limit-output-bytes", 0, "default per-session terminal output quota in bytes (0 = unlimited)")
	tenantMetrics := fs.Bool("tenant-metrics", false,
		"give every session its own metric registry, exposed on /metrics under a tenant.<id>. prefix")
	acceptTimeout := fs.Duration("accept-timeout", 30*time.Second,
		"system-provided timeout for ACCEPT statements without a DELAY clause")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second,
		"how long SIGTERM waits for queued and running sessions to finish")
	historyFile := fs.String("history-file", "",
		"append one JSON line per finished session (tenant, verdict, quota outcome, timings) to this file; an existing file rotates to .1, .2, ...")
	logJSON := fs.Bool("log-json", false,
		"write structured JSON log lines for session lifecycle events (submitted, finished, panic, limit) to stderr")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: pisces serve [flags]  (daemon mode takes no program file; POST them to /programs)")
	}
	cfg := serve.Config{
		Clusters:   *clusters,
		Slots:      *slots,
		MaxActive:  *maxPrograms,
		QueueDepth: *queueDepth,
		CacheBytes: *cacheBytes,
		DefaultLimits: serve.Limits{
			HeapBytes:   *limitHeap,
			MaxTasks:    *limitTasks,
			WallClock:   *limitWall,
			OutputBytes: *limitOutput,
		},
		TenantMetrics: *tenantMetrics,
		AcceptTimeout: *acceptTimeout,
	}
	if *forces != "" {
		pes, err := parseForces(*forces)
		if err != nil {
			return err
		}
		cfg.ForceCluster, cfg.ForcePEs = 1, pes
	}
	if *historyFile != "" {
		f, err := os.Create(obs.UniquePath(*historyFile))
		if err != nil {
			return fmt.Errorf("-history-file: %w", err)
		}
		defer f.Close()
		cfg.History = f
	}
	if *logJSON {
		cfg.Log = os.Stderr
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	defer ln.Close()

	m := serve.New(cfg)
	// One listener serves both personalities: the program API and the
	// debug/observability surface, whose /metrics renders the daemon-wide
	// snapshot (manager + shared cache + per-tenant series).
	mux := http.NewServeMux()
	api := m.Handler()
	mux.Handle("/programs", api)
	mux.Handle("/programs/", api)
	mux.Handle("/", obs.DebugHandlerSource(m.Snapshot))

	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(out, "pisces: serving on http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "pisces: %v: draining (%d sessions retained)\n", s, len(m.Sessions()))
		drainErr := m.Drain(*drainTimeout)
		_ = srv.Close()
		if drainErr != nil {
			return drainErr
		}
		fmt.Fprintf(out, "pisces: drained, exiting\n")
		return nil
	case err := <-serveErr:
		return err
	}
}
