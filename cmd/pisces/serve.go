package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	pisces "repro"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/pfi"
	"repro/internal/stats"
)

// Distributed mode.
//
// "pisces serve" is one node process of a distributed run: it joins the TCP
// mesh described by -peers, hosts its share of the clusters, and either
// drives the program (node 0) or serves routed traffic until the coordinator
// orders shutdown.  "pisces run -nodes N" is the convenience wrapper: it
// forks N-1 serve processes itself, runs node 0 in-process so program output
// streams to the caller's stdout unmodified, and relays the children's
// output to stderr with a [node i] prefix.

// wireFlags holds the batched-wire-path knobs shared by "pisces serve" and
// "pisces run -nodes".  The -wire-batch default honours PISCES_WIRE_BATCH
// ("on"/"off") so the CI smoke matrix can force a whole forked mesh on or
// off through the environment without touching every command line.
type wireFlags struct {
	mode   *string
	bytes  *int
	delay  *time.Duration
	window *int
}

func addWireFlags(fs *flag.FlagSet) *wireFlags {
	def := os.Getenv("PISCES_WIRE_BATCH")
	if def == "" {
		def = "on"
	}
	return &wireFlags{
		mode: fs.String("wire-batch", def,
			"frame coalescing on the node wire path: on packs many frames per write syscall, off flushes every frame before Send returns (default honours PISCES_WIRE_BATCH)"),
		bytes: fs.Int("wire-batch-bytes", 0, "target batch buffer size in bytes (0 = 64KiB)"),
		delay: fs.Duration("wire-batch-delay", 0,
			"longest a partial batch lingers waiting for more frames; 0 flushes as soon as the writer is free"),
		window: fs.Int("wire-credit-window", 0,
			"per-lane flow-control window in frames (0 = 1024; negative disables flow control)"),
	}
}

func (w *wireFlags) config() (node.WireConfig, error) {
	cfg := node.WireConfig{BatchBytes: *w.bytes, BatchDelay: *w.delay, CreditWindow: *w.window}
	switch *w.mode {
	case "on":
	case "off":
		cfg.Unbatched = true
	default:
		return cfg, fmt.Errorf("-wire-batch: %q (want on or off)", *w.mode)
	}
	return cfg, nil
}

// serveArgs forwards the knobs to a forked follower so every node of the
// mesh runs the same wire settings.
func (w *wireFlags) serveArgs() []string {
	return []string{
		"-wire-batch", *w.mode,
		"-wire-batch-bytes", strconv.Itoa(*w.bytes),
		"-wire-batch-delay", w.delay.String(),
		"-wire-credit-window", strconv.Itoa(*w.window),
	}
}

// haFlags holds the fault-tolerance knobs shared by "pisces serve" and
// "pisces run -nodes".  Every node of a mesh must run the same settings.
type haFlags struct {
	enabled   *bool
	heartbeat *time.Duration
	ckpt      *time.Duration
}

func addHAFlags(fs *flag.FlagSet) *haFlags {
	return &haFlags{
		enabled: fs.Bool("ha", false,
			"fault-tolerant mesh: peer heartbeats, periodic checkpoints streamed to a buddy node, and automatic adoption of a dead node's clusters; node 0 is not recoverable, and one failure per checkpoint interval is tolerated"),
		heartbeat: fs.Duration("heartbeat-interval", 0,
			"HA heartbeat and failure-detector sweep period (0 = 25ms); a peer silent for 10 intervals is declared dead"),
		ckpt: fs.Duration("checkpoint-interval", 0,
			"HA checkpoint period (0 = 250ms); work since the last checkpoint is recovered by replaying retained frames"),
	}
}

// validate refuses tuning knobs without -ha rather than silently ignoring
// them.
func (h *haFlags) validate() error {
	if !*h.enabled && (*h.heartbeat != 0 || *h.ckpt != 0) {
		return fmt.Errorf("-heartbeat-interval and -checkpoint-interval require -ha")
	}
	if *h.heartbeat < 0 || *h.ckpt < 0 {
		return fmt.Errorf("HA intervals must be positive")
	}
	return nil
}

// apply copies the knobs onto the node options.  The suspicion timeout
// follows a custom heartbeat at the default 10x ratio, so tightening the
// heartbeat keeps the detector sound without a second flag.
func (h *haFlags) apply(o *node.Options) {
	o.HA = *h.enabled
	o.HeartbeatInterval = *h.heartbeat
	o.CheckpointInterval = *h.ckpt
	if *h.heartbeat > 0 {
		o.SuspicionAfter = 10 * *h.heartbeat
	}
}

// serveArgs forwards the knobs to a forked follower.
func (h *haFlags) serveArgs() []string {
	if !*h.enabled {
		return nil
	}
	return []string{
		"-ha",
		"-heartbeat-interval", h.heartbeat.String(),
		"-checkpoint-interval", h.ckpt.String(),
	}
}

// runServe implements "pisces serve -node K -peers a,b,... <program.pf>".
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pisces serve", flag.ContinueOnError)
	nodeID := fs.Int("node", 0, "this process's node id (index into -peers)")
	peers := fs.String("peers", "", "comma-separated listen addresses of every node, in node-id order")
	clusters := fs.Int("clusters", 2, "number of clusters")
	slots := fs.Int("slots", 4, "user-task slots per cluster")
	forces := fs.String("forces", "", "comma-separated secondary PEs for cluster 1 forces")
	mainTT := fs.String("main", "", "entry tasktype (node 0; default MAIN, else the first tasktype)")
	showStats := fs.Bool("stats", false, "print interpreter, router-lane, and runtime metric summaries after the run (node 0)")
	collectMetrics := fs.Bool("metrics", false,
		"collect runtime metrics even without printing them, so drain acks carry this node's snapshot to the coordinator")
	collectTrace := fs.Bool("trace-collect", false,
		"capture runtime spans and causal flow events even without -trace-out, so drain acks carry this node's trace to the coordinator's merged file")
	debugAddr := fs.String("debug-addr", "",
		"serve observability endpoints (/metrics Prometheus text, /debug/vars, /debug/pprof) on this address while the node runs")
	acceptTimeout := fs.Duration("accept-timeout", 30*time.Second,
		"system-provided timeout for ACCEPT statements without a DELAY clause")
	connectTimeout := fs.Duration("connect-timeout", 30*time.Second, "how long to wait for the mesh to form")
	traceOut := fs.String("trace-out", "",
		"write this node's runtime spans (including HA recovery) to this file as Chrome trace-event JSON")
	blackboxOut := fs.String("blackbox-out", "",
		"write a flight-recorder dump into this directory on failure paths (HA rebalance, drain timeout, limit violation)")
	wire := addWireFlags(fs)
	ha := addHAFlags(fs)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: pisces serve -node K -peers a,b,... [flags] <program.pf>")
	}
	addrs := splitAddrs(*peers)
	if len(addrs) < 2 {
		return fmt.Errorf("-peers must list at least two node addresses")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg, err := buildConfiguration("", *clusters, *slots, *forces, "")
	if err != nil {
		return err
	}
	wireCfg, err := wire.config()
	if err != nil {
		return err
	}
	if err := ha.validate(); err != nil {
		return err
	}
	reg := obs.New()
	if *showStats || *collectMetrics || *debugAddr != "" {
		reg.Enable(obs.Metrics)
	}
	if *traceOut != "" || *collectTrace {
		reg.Enable(obs.Spans)
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		defer dln.Close()
		go func() { _ = http.Serve(dln, obs.DebugHandler(reg)) }()
		fmt.Fprintf(os.Stderr, "node %d: debug endpoints on http://%s/\n", *nodeID, dln.Addr())
	}
	o := node.Options{
		NodeID: *nodeID, Addrs: addrs,
		Config: cfg, Source: string(src), Main: *mainTT,
		Out: out, Log: os.Stderr,
		AcceptTimeout: *acceptTimeout, ConnectTimeout: *connectTimeout,
		Metrics: reg, Wire: wireCfg, BlackboxDir: *blackboxOut,
	}
	ha.apply(&o)
	n, err := node.Start(o)
	if err != nil {
		return err
	}
	var runErr error
	if *nodeID != 0 {
		runErr = n.ServeUntilShutdown()
	} else {
		runErr = n.RunMain()
		// Close before printing: the shutdown drain is what ships the
		// followers' metric snapshots to this node, so a summary printed
		// earlier could only cover node 0.
		if err := n.Close(); err != nil && runErr == nil {
			runErr = err
		}
		if *showStats {
			printRunStats(out, n.Program(), n.VM())
			printTransportStats(out, n)
			printMeshMetrics(out, n)
		}
	}
	if *traceOut != "" {
		// Node 0 merges the trace blobs the followers piggybacked on their
		// drain acks, so its file shows every node as its own process track
		// with cross-node flow arrows; followers write their local view.
		var werr error
		if *nodeID == 0 {
			werr = writeMeshTraceFile(*traceOut, n)
		} else {
			werr = writeTraceFile(*traceOut, reg)
		}
		if werr != nil && runErr == nil {
			runErr = werr
		}
	}
	return runErr
}

// writeMeshTraceFile dumps the coordinator's merged multi-node trace (its own
// spans plus every follower's drained trace blob) as Chrome trace-event JSON,
// rotating rather than clobbering an existing file.
func writeMeshTraceFile(path string, n *node.Node) error {
	f, err := os.Create(obs.UniquePath(path))
	if err != nil {
		return err
	}
	if err := n.WriteMeshTrace(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// printTransportStats renders the node transport's frame counters.
func printTransportStats(w io.Writer, n *node.Node) {
	sent, recv := n.TransportCounts()
	cs := stats.NewCounters()
	cs.Counter("wire.frames.sent").Add(int64(sent))
	cs.Counter("wire.frames.received").Add(int64(recv))
	fmt.Fprint(w, cs.Table("node transport (wire frames)").String())
}

func splitAddrs(peers string) []string {
	var addrs []string
	for _, a := range strings.Split(peers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// runDistributed implements "pisces run -nodes N": fork the follower node
// processes, run node 0 inline, and reap the children.
func runDistributed(nodes, clusters, slots int, forces, mainTT string, showStats bool, traceOut, blackboxOut string, acceptTimeout time.Duration, wire *wireFlags, ha *haFlags, file string, out io.Writer) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	cfg, err := buildConfiguration("", clusters, slots, forces, "")
	if err != nil {
		return err
	}
	wireCfg, err := wire.config()
	if err != nil {
		return err
	}
	if len(cfg.ClusterNumbers()) < nodes {
		return fmt.Errorf("-nodes %d needs at least that many clusters (have %d)", nodes, len(cfg.ClusterNumbers()))
	}

	// Reserve one loopback port per node.  Node 0 keeps its listener; the
	// children re-bind theirs (the freed port could in principle be taken in
	// between, in which case the child fails and the run errors out).
	listeners := make([]net.Listener, nodes)
	addrs := make([]string, nodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("reserving node %d port: %w", i, err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := 1; i < nodes; i++ {
		_ = listeners[i].Close()
	}
	peers := strings.Join(addrs, ",")

	exe, err := os.Executable()
	if err != nil {
		_ = listeners[0].Close()
		return err
	}
	var children []*exec.Cmd
	killChildren := func() {
		for _, c := range children {
			if c.Process != nil {
				_ = c.Process.Kill()
			}
		}
	}
	for i := 1; i < nodes; i++ {
		args := []string{"serve",
			"-node", strconv.Itoa(i), "-peers", peers,
			"-clusters", strconv.Itoa(clusters), "-slots", strconv.Itoa(slots),
			"-accept-timeout", acceptTimeout.String(),
		}
		args = append(args, wire.serveArgs()...)
		args = append(args, ha.serveArgs()...)
		if blackboxOut != "" {
			args = append(args, "-blackbox-out", blackboxOut)
		}
		if traceOut != "" {
			// Followers capture spans so their drain acks carry a trace blob
			// for the coordinator's merged file; they write no file of their
			// own (no -trace-out in the forwarded args).
			args = append(args, "-trace-collect")
		}
		if forces != "" {
			args = append(args, "-forces", forces)
		}
		if showStats {
			// The followers collect metrics so their drain acks carry
			// snapshots; the merged view prints on node 0 only.
			args = append(args, "-metrics")
		}
		args = append(args, file)
		cmd := exec.Command(exe, args...)
		relay := &prefixWriter{w: os.Stderr, prefix: fmt.Sprintf("[node %d] ", i)}
		cmd.Stdout = relay
		cmd.Stderr = relay
		if err := cmd.Start(); err != nil {
			killChildren()
			_ = listeners[0].Close()
			return fmt.Errorf("starting node %d: %w", i, err)
		}
		children = append(children, cmd)
	}

	reg := obs.New()
	if showStats {
		reg.Enable(obs.Metrics)
	}
	if traceOut != "" {
		reg.Enable(obs.Spans)
	}
	o := node.Options{
		NodeID: 0, Addrs: addrs, Listener: listeners[0],
		Config: cfg, Source: string(src), Main: mainTT,
		Out: out, Log: os.Stderr,
		AcceptTimeout: acceptTimeout, ConnectTimeout: 30 * time.Second,
		Metrics: reg, Wire: wireCfg, BlackboxDir: blackboxOut,
	}
	ha.apply(&o)
	n, err := node.Start(o)
	if err != nil {
		killChildren()
		return err
	}
	runErr := n.RunMain()
	// Close before printing: the shutdown drain ships the followers' metric
	// snapshots, so printing earlier would miss them.
	if err := n.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if showStats {
		printRunStats(out, n.Program(), n.VM())
		printTransportStats(out, n)
		printMeshMetrics(out, n)
	}
	if traceOut != "" {
		// The merged file carries each node as its own process track; causal
		// flow events connect a send span on one track to the delivery on
		// another.
		if err := writeMeshTraceFile(traceOut, n); err != nil && runErr == nil {
			runErr = err
		}
	}

	// The followers exit on the shutdown frame; anything still alive after a
	// grace period is stuck and gets killed so the run always terminates.
	done := make(chan error, len(children))
	for _, c := range children {
		go func(c *exec.Cmd) { done <- c.Wait() }(c)
	}
	deadline := time.After(15 * time.Second)
	for range children {
		select {
		case err := <-done:
			if err != nil {
				if *ha.enabled {
					// Under -ha a dead follower is survivable by design: the
					// mesh rebalanced around it and the run completed above.
					fmt.Fprintf(os.Stderr, "pisces: node process exited abnormally (tolerated under -ha): %v\n", err)
				} else if runErr == nil {
					runErr = fmt.Errorf("node process failed: %w", err)
				}
			}
		case <-deadline:
			killChildren()
			if runErr == nil {
				runErr = fmt.Errorf("node processes did not exit after shutdown")
			}
		}
	}
	return runErr
}

// printRunStats renders the interpreter activity counters and the router
// lane observability (enqueue/inline/backlog-drain counts and current depth
// per (source, destination) cluster lane) through stats.Counters, so the
// pisces run summary shows where cross-cluster traffic flowed.  The runtime
// metric registry prints separately (printMetricsTables /
// printMeshMetrics), because in distributed runs the per-node snapshot is
// folded into one merged mesh view instead of printing on its own.
func printRunStats(w io.Writer, prog *pfi.Program, vm *pisces.VM) {
	if prog != nil {
		fmt.Fprint(w, prog.StatsTable())
	}
	fmt.Fprint(w, routerStatsTable(vm))
}

// printMetricsTables renders one metric snapshot's counter and histogram
// tables.
func printMetricsTables(w io.Writer, snap *obs.Snapshot, title string) {
	for _, t := range snap.Tables(title) {
		fmt.Fprint(w, t.String())
	}
}

// printMeshMetrics prints the cluster-wide metric view of a distributed run:
// the coordinator's own snapshot merged with the latest snapshot each
// follower piggybacked on its drain acks, labelled with every node's hosted
// cluster set.  Must run after Close — the shutdown drain is what collects
// the follower snapshots.  The per-peer wire lane counters (node.tx.*,
// node.rx.*) come out directional, so the merged table shows both endpoints
// of every lane without collisions.
func printMeshMetrics(w io.Writer, n *node.Node) {
	reg := n.Obs()
	if !reg.Has(obs.Metrics) {
		return
	}
	topo := n.Topology()
	merged := reg.Snapshot()
	labels := []string{fmt.Sprintf("node 0 (clusters %v)", topo.Clusters(0))}
	snaps := n.FollowerSnapshots()
	ids := make([]int, 0, len(snaps))
	for id := range snaps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		merged.Merge(snaps[id])
		labels = append(labels, fmt.Sprintf("node %d (clusters %v)", id, topo.Clusters(id)))
	}
	printMetricsTables(w, merged, "mesh runtime metrics: "+strings.Join(labels, ", "))
}

// routerStatsTable renders vm.RouterStats as a stats.Counters table; empty
// on single-cluster machines (no lanes).
func routerStatsTable(vm *pisces.VM) string {
	lanes := vm.RouterStats()
	if len(lanes) == 0 {
		return ""
	}
	cs := stats.NewCounters()
	for _, l := range lanes {
		p := fmt.Sprintf("lane.c%d->c%d.", l.Src, l.Dst)
		cs.Counter(p + "inline").Add(l.Inline)
		cs.Counter(p + "enqueued").Add(l.Enqueued)
		cs.Counter(p + "drained").Add(l.Drained)
		cs.Counter(p + "depth").Add(int64(l.Depth))
	}
	return cs.Table("router lanes (messages)").String()
}

// prefixWriter relays a child process's output line by line with a node
// prefix, so follower diagnostics are attributable without polluting the
// coordinator's program output.
type prefixWriter struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	buf    bytes.Buffer
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf.Write(b)
	for {
		line, err := p.buf.ReadString('\n')
		if err != nil {
			// Partial line: keep it buffered for the next write.
			p.buf.WriteString(line)
			break
		}
		fmt.Fprintf(p.w, "%s%s", p.prefix, line)
	}
	return len(b), nil
}
